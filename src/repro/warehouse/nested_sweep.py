"""Nested SWEEP (paper Section 6): cumulative updates, strong consistency.

Structure follows Figure 6.  ``ViewChange(Delta-R, Left, UpdateSource,
Right)`` sweeps left then right like SWEEP, but when the answer from source
``j`` reveals an interfering update ``Delta-Rj``, the update is *removed*
from the message queue, its error term is compensated, and its missing
effects are computed by a recursive ``ViewChange`` restricted to the
relations the outer sweep has already passed:

* left sweep at ``j``:  recurse over ``j+1 .. UpdateSource`` (those sources
  already reflect the in-flight update, giving the ``R_i^new`` dovetailing
  of Section 6.1);
* right sweep at ``k``: recurse over ``Left .. k-1``.

The recursion's result is *added* to the running ``Delta-V``, so the outer
sweep's remaining queries carry both updates onward.  One composite install
covers the initial update plus everything absorbed -- message cost is
amortized, complete consistency is given up, strong consistency retained.

Termination: an unbroken sequence of alternating interfering updates makes
the recursion oscillate (Section 6.2).  ``max_depth`` implements the
paper's suggested fix -- beyond that depth the algorithm stops absorbing
and falls back to SWEEP-style compensation, leaving the update queued.
"""

from __future__ import annotations

from collections.abc import Generator

from repro.relational.incremental import PartialView
from repro.sources.messages import UpdateNotice
from repro.warehouse.base import QueueDrivenWarehouse


class NestedSweepWarehouse(QueueDrivenWarehouse):
    """The recursive incremental view construction algorithm of Figure 6."""

    algorithm_name = "nested-sweep"

    def __init__(self, *args, max_depth: int | None = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.max_depth = max_depth
        self.max_depth_hits = 0

    # ------------------------------------------------------------------
    def process_update(self, notice: UpdateNotice) -> Generator:
        """Top-level: ViewChange(Delta-R, 1, i, n), then one composite install."""
        absorbed: list[UpdateNotice] = [notice]
        result = yield from self._view_change(
            notice.delta,
            left=1,
            update_source=notice.source_index,
            right=self.view.n_relations,
            absorbed=absorbed,
            depth=0,
        )
        self.mark_applied(absorbed)
        self.metrics.observe("updates_per_install", len(absorbed))
        self.install_wide(
            result.delta,
            note=(
                f"composite of {len(absorbed)} update(s), first"
                f" src={notice.source_index} seq={notice.seq}"
            ),
        )

    def view_change(self, notice: UpdateNotice) -> Generator:
        raise NotImplementedError(
            "Nested SWEEP overrides process_update directly"
        )

    # ------------------------------------------------------------------
    def _view_change(
        self,
        delta,
        left: int,
        update_source: int,
        right: int,
        absorbed: list[UpdateNotice],
        depth: int,
    ) -> Generator:
        """Figure 6's ViewChange(Delta-R, Left, UpdateSource, Right)."""
        partial = PartialView.initial(self.view, update_source, delta)
        # Left part: j = UpdateSource-1 down to Left
        for j in range(update_source - 1, left - 1, -1):
            temp = partial
            answer = yield from self.query_and_await(j, partial)
            partial = yield from self._absorb_or_compensate(
                answer, temp, j,
                recurse_left=j, recurse_source=j, recurse_right=update_source,
                absorbed=absorbed, depth=depth,
            )
        # Right part: j = UpdateSource+1 up to Right
        for j in range(update_source + 1, right + 1):
            temp = partial
            answer = yield from self.query_and_await(j, partial)
            partial = yield from self._absorb_or_compensate(
                answer, temp, j,
                recurse_left=left, recurse_source=j, recurse_right=j,
                absorbed=absorbed, depth=depth,
            )
        return partial

    # ------------------------------------------------------------------
    def _absorb_or_compensate(
        self,
        answer: PartialView,
        temp: PartialView,
        index: int,
        recurse_left: int,
        recurse_source: int,
        recurse_right: int,
        absorbed: list[UpdateNotice],
        depth: int,
    ) -> Generator:
        """Handle interference at ``index``: compensate, then (maybe) recurse.

        Beyond ``max_depth`` the update stays queued (SWEEP behaviour),
        guaranteeing termination under adversarial interference.
        """
        pending = self.pending_updates_from(index)
        if not pending:
            return answer
        self.metrics.increment("compensations")
        merged = self.merged_pending_delta(pending)
        error = temp.extend(index, merged)
        partial = answer.compensate(error)

        if self.max_depth is not None and depth >= self.max_depth:
            self.max_depth_hits += 1
            self.metrics.increment("nested_depth_limit_hits")
            return partial  # leave the updates queued; SWEEP handles later

        # Remove the absorbed updates from the queue (Figure 6).
        for msg in list(self.update_queue.peek_all()):
            if msg.payload in pending:
                self.update_queue.remove(msg)
        absorbed.extend(pending)
        if self.trace:
            self.trace.record(
                self.sim.now,
                "warehouse",
                "nested-absorb",
                f"src={index} x{len(pending)} depth={depth}",
            )
        missing = yield from self._view_change(
            merged,
            left=recurse_left,
            update_source=recurse_source,
            right=recurse_right,
            absorbed=absorbed,
            depth=depth + 1,
        )
        return partial.add(missing)


__all__ = ["NestedSweepWarehouse"]
