"""Pipelined SWEEP -- the second Section 5.3 optimization, implemented.

The paper: *"Another optimization ... is to pipeline the view construction
for multiple updates.  This will introduce some complexity in the data
warehouse software module but will result in a rapid installation of view
changes ...  To maintain consistency, the view changes should be
incorporated in the order of the arrival of the updates and a more
elaborate mechanism will be needed to detect concurrent updates."*

This module supplies that machinery:

* every delivered update immediately starts its own ViewChange process
  (bounded by ``max_parallel``), so sweeps for consecutive updates overlap
  instead of queueing behind one another;
* answers are routed to the right sweep by request id;
* the **elaborate concurrency detection**: plain SWEEP scans the update
  queue, but here earlier-delivered updates are already out of the queue
  running their own sweeps.  The warehouse instead keeps the full delivery
  log; when update ``u``'s sweep receives an answer from source ``j``, it
  compensates for exactly the logged updates from ``j`` with
  ``delivery_seq > u.delivery_seq`` -- delivered before the answer (they
  are in the log) hence, by FIFO, applied before the query was evaluated.
  Updates from ``j`` delivered *before* ``u`` are included in the answer
  and belong in ``u``'s view change (their installs precede ``u``'s), so
  they are correctly left alone;
* completed view changes land in a reorder buffer and are installed
  strictly in delivery order, preserving **complete consistency**.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Generator

from repro.relational.delta import merge_deltas
from repro.relational.incremental import PartialView
from repro.simulation.mailbox import Mailbox
from repro.sources.messages import UpdateNotice
from repro.warehouse.base import WarehouseBase
from repro.warehouse.errors import ProtocolError


class PipelinedSweepWarehouse(WarehouseBase):
    """SWEEP with overlapping per-update sweeps and in-order installs."""

    algorithm_name = "pipelined-sweep"

    def __init__(self, *args, max_parallel: int = 8, **kwargs):
        super().__init__(*args, **kwargs)
        if max_parallel < 1:
            raise ValueError(f"max_parallel must be >= 1, got {max_parallel}")
        self.max_parallel = max_parallel
        #: all updates ever delivered, in delivery order (the "log").
        self.delivery_log: list[UpdateNotice] = []
        self._waiting: deque[UpdateNotice] = deque()
        self._active_sweeps = 0
        self._answer_routes: dict[int, Mailbox] = {}
        #: completed view changes keyed by delivery_seq (reorder buffer).
        self._completed: dict[int, PartialView] = {}
        self._next_install_seq = 1
        self.sim.spawn("wh-pipelined-dispatch", self._dispatch())

    # ------------------------------------------------------------------
    def pending_work(self) -> bool:
        return bool(
            self._waiting
            or self._active_sweeps
            or self._completed
            or any(len(box) for box in self._answer_routes.values())
        )

    # ------------------------------------------------------------------
    def _dispatch(self) -> Generator:
        while True:
            msg = yield self.inbox.get()
            if msg.kind == "update":
                notice: UpdateNotice = msg.payload
                self.note_delivery(notice)
                self.delivery_log.append(notice)
                self._waiting.append(notice)
                self._maybe_start()
            elif msg.kind == "answer":
                box = self._answer_routes.pop(msg.payload.request_id, None)
                if box is None:
                    raise ProtocolError(
                        f"answer for unknown request {msg.payload.request_id}"
                    )
                if self.locality is not None:
                    # Insert into the answer cache at the delivered
                    # position, before any later delivery can interleave.
                    self.locality.on_answer_routed(msg.payload)
                # Latch the log length: updates logged later were delivered
                # after this answer and must not be compensated against it.
                box.put((msg, len(self.delivery_log)))
            else:  # pragma: no cover - defensive
                raise ProtocolError(f"unexpected message kind {msg.kind!r}")

    def _maybe_start(self) -> None:
        while self._waiting and self._active_sweeps < self.max_parallel:
            notice = self._waiting.popleft()
            self._active_sweeps += 1
            self.metrics.observe("pipeline_depth", self._active_sweeps)
            self.sim.spawn(
                f"wh-sweep-{notice.delivery_seq}", self._sweep(notice)
            )

    # ------------------------------------------------------------------
    def _sweep(self, notice: UpdateNotice) -> Generator:
        """One ViewChange, racing its siblings."""
        i = notice.source_index
        my_box = Mailbox(self.sim, f"sweep-{notice.delivery_seq}-answers")
        partial = PartialView.initial(self.view, i, notice.delta)
        order = list(range(i - 1, 0, -1)) + list(
            range(i + 1, self.view.n_relations + 1)
        )
        for j in order:
            temp = partial
            local = self._local_answer(notice, j, partial)
            if local is not None:
                partial = local
                continue
            request = self.make_sweep_query(j, partial)
            self._answer_routes[request.request_id] = my_box
            self.send_query(j, request)
            msg, log_len = yield my_box.get()
            answer: PartialView = msg.payload.partial
            partial = self._compensate(notice, j, answer, temp, log_len)
        self._complete(notice, partial)

    def _local_answer(
        self, notice: UpdateNotice, index: int, partial: PartialView
    ) -> PartialView | None:
        """Answer one sweep step locally (covered copy or cache), or None.

        The covered copy sits at the *installed* position, but update
        ``u``'s answer must reflect exactly the ``index``-updates with
        ``delivery_seq < u.delivery_seq``.  Installs run strictly in
        delivery order and this method never yields, so the gap is
        precisely the delivered-but-uninstalled log prefix below ``u`` --
        joined in locally, the same bilinearity as compensation.

        A cache hit is an answer routed this instant: compensate against
        the full current delivery log, exactly as the remote path does
        with its latched ``log_len``.
        """
        if self.locality is None:
            return None
        if self.locality.covers(index):
            answer = self.locality.aux_answer(index, partial)
            uninstalled = [
                n
                for n in self.delivery_log[
                    self._next_install_seq - 1 : notice.delivery_seq - 1
                ]
                if n.source_index == index
            ]
            if uninstalled:
                merged = merge_deltas(
                    self.view.schema_of(index),
                    [n.delta for n in uninstalled],
                )
                if merged:
                    answer = answer.add_in_place(partial.extend(index, merged))
            return answer
        hit = self.locality.cache_lookup(index, partial)
        if hit is None:
            return None
        return self._compensate(
            notice, index, hit, partial, len(self.delivery_log)
        )

    def _compensate(
        self,
        notice: UpdateNotice,
        index: int,
        answer: PartialView,
        temp: PartialView,
        log_len: int,
    ) -> PartialView:
        """Subtract updates from ``index`` delivered after this update.

        ``delivery_log[:log_len]`` holds exactly the updates delivered
        before this answer; FIFO makes the later-than-``notice`` subset of
        them precisely the interference contained in the answer.
        """
        interfering = [
            n
            for n in self.delivery_log[:log_len]
            if n.source_index == index and n.delivery_seq > notice.delivery_seq
        ]
        if not interfering:
            return answer
        self.metrics.increment("compensations")
        merged = merge_deltas(
            self.view.schema_of(index), [n.delta for n in interfering]
        )
        if not merged:
            return answer
        error = temp.extend(index, merged)
        return answer.compensate(error)

    # ------------------------------------------------------------------
    def _complete(self, notice: UpdateNotice, partial: PartialView) -> None:
        """Buffer the finished view change; install in delivery order."""
        self._completed[notice.delivery_seq] = partial
        self._active_sweeps -= 1
        while self._next_install_seq in self._completed:
            seq = self._next_install_seq
            ready = self._completed.pop(seq)
            ready_notice = self.delivery_log[seq - 1]
            self.mark_applied([ready_notice])
            self.install_wide(
                ready.delta,
                note=(
                    f"pipelined update src={ready_notice.source_index}"
                    f" seq={ready_notice.seq} (delivery #{seq})"
                ),
            )
            self._next_install_seq += 1
        self._maybe_start()


__all__ = ["PipelinedSweepWarehouse"]
