"""Full recomputation per update: the expensive end of the spectrum.

Section 3 dismisses recomputing the view for every update as unrealistic;
this baseline makes the cost measurable.  For each dequeued update the
warehouse requests a *full snapshot* from every source, recomputes the view
from scratch and installs the difference.  Message count is O(n) per
update, but payloads carry entire base relations -- the `rows` metric of
the message accounting shows the gap from SWEEP's delta-sized traffic.

Consistency: each snapshot reflects that source's state at its own
evaluation time, so every install corresponds to a valid, monotonically
advancing state vector (strong consistency), though not to the delivery
prefix SWEEP materializes.
"""

from __future__ import annotations

from collections.abc import Generator

from repro.durability.encoding import snapshot_relation
from repro.relational.delta import Delta
from repro.relational.relation import Relation
from repro.sources.messages import SnapshotRequest, UpdateNotice, next_request_id
from repro.warehouse.base import QueueDrivenWarehouse
from repro.warehouse.errors import ProtocolError


class RecomputeWarehouse(QueueDrivenWarehouse):
    """Recompute the whole view from source snapshots on every update."""

    algorithm_name = "recompute"

    def view_change(self, notice: UpdateNotice) -> Generator:
        raise NotImplementedError("recompute overrides process_update")

    def process_update(self, notice: UpdateNotice) -> Generator:
        states: dict[str, Relation] = {}
        for j in range(1, self.view.n_relations + 1):
            request = SnapshotRequest(request_id=next_request_id())
            self.send_query(j, request)
            msg, _pending = yield self._answer_box.get()
            answer = msg.payload
            if answer.request_id != request.request_id:
                raise ProtocolError(
                    f"snapshot answer {answer.request_id} does not match"
                    f" request {request.request_id}"
                )
            states[self.view.name_of(answer.source_index)] = snapshot_relation(
                answer, self.view.schema_of(answer.source_index)
            )

        fresh = self.view.evaluate(states)
        delta = Delta(self.store.relation.schema)
        for row, count in fresh.items():
            delta.add(row, count)
        for row, count in self.store.relation.items():
            delta.add(row, -count)

        self.mark_applied([notice])
        self.install_view_delta(
            delta,
            note=f"recompute after src={notice.source_index} seq={notice.seq}",
        )


__all__ = ["RecomputeWarehouse"]
