"""Algorithm registry and the static properties column of Table 1."""

from __future__ import annotations

from dataclasses import dataclass

from repro.consistency.levels import ConsistencyLevel
from repro.warehouse.base import WarehouseBase
from repro.warehouse.batched import BatchedSweepWarehouse
from repro.warehouse.bootstrap import BootstrapSweepWarehouse
from repro.warehouse.convergent import ConvergentWarehouse
from repro.warehouse.cstrobe import CStrobeWarehouse
from repro.warehouse.eca import EcaWarehouse
from repro.warehouse.global_txn import GlobalSweepWarehouse
from repro.warehouse.nested_sweep import NestedSweepWarehouse
from repro.warehouse.pipelined import PipelinedSweepWarehouse
from repro.warehouse.recompute import RecomputeWarehouse
from repro.warehouse.strobe import StrobeWarehouse
from repro.warehouse.sweep import SweepWarehouse


@dataclass(frozen=True)
class AlgorithmInfo:
    """Table 1 row metadata for one maintenance algorithm."""

    name: str
    cls: type[WarehouseBase]
    architecture: str  # "centralized" | "distributed"
    claimed_consistency: ConsistencyLevel
    message_cost: str  # the paper's asymptotic claim, for reports
    requires_keys: bool
    requires_quiescence: bool
    comments: str
    in_paper_table: bool = True


ALGORITHMS: dict[str, AlgorithmInfo] = {
    info.name: info
    for info in (
        AlgorithmInfo(
            name="eca",
            cls=EcaWarehouse,
            architecture="centralized",
            claimed_consistency=ConsistencyLevel.STRONG,
            message_cost="O(1)",
            requires_keys=False,
            requires_quiescence=True,
            comments="remote compensation; quadratic message size",
        ),
        AlgorithmInfo(
            name="strobe",
            cls=StrobeWarehouse,
            architecture="distributed",
            claimed_consistency=ConsistencyLevel.STRONG,
            message_cost="O(n)",
            requires_keys=True,
            requires_quiescence=True,
            comments="unique key assumption; requires quiescence",
        ),
        AlgorithmInfo(
            name="c-strobe",
            cls=CStrobeWarehouse,
            architecture="distributed",
            claimed_consistency=ConsistencyLevel.COMPLETE,
            message_cost="O(n!)",
            requires_keys=True,
            requires_quiescence=False,
            comments="unique key assumption; not scalable",
        ),
        AlgorithmInfo(
            name="sweep",
            cls=SweepWarehouse,
            architecture="distributed",
            claimed_consistency=ConsistencyLevel.COMPLETE,
            message_cost="O(n)",
            requires_keys=False,
            requires_quiescence=False,
            comments="local compensation",
        ),
        AlgorithmInfo(
            name="nested-sweep",
            cls=NestedSweepWarehouse,
            architecture="distributed",
            claimed_consistency=ConsistencyLevel.STRONG,
            message_cost="O(n)",
            requires_keys=False,
            requires_quiescence=False,
            comments="local compensation; requires non-interference",
        ),
        AlgorithmInfo(
            name="batched-sweep",
            cls=BatchedSweepWarehouse,
            architecture="distributed",
            claimed_consistency=ConsistencyLevel.STRONG,
            message_cost="O(n)+k",
            requires_keys=False,
            requires_quiescence=False,
            comments="SWEEP batching: one composite sweep per drained queue",
            in_paper_table=False,
        ),
        AlgorithmInfo(
            name="bootstrap-sweep",
            cls=BootstrapSweepWarehouse,
            architecture="distributed",
            claimed_consistency=ConsistencyLevel.STRONG,
            message_cost="O(n)",
            requires_keys=False,
            requires_quiescence=False,
            comments="SWEEP with online initial load (view starts empty)",
            in_paper_table=False,
        ),
        AlgorithmInfo(
            name="global-sweep",
            cls=GlobalSweepWarehouse,
            architecture="distributed",
            claimed_consistency=ConsistencyLevel.STRONG,
            message_cost="O(n)",
            requires_keys=False,
            requires_quiescence=False,
            comments="SWEEP + atomic global transactions (type 3 updates)",
            in_paper_table=False,
        ),
        AlgorithmInfo(
            name="pipelined-sweep",
            cls=PipelinedSweepWarehouse,
            architecture="distributed",
            claimed_consistency=ConsistencyLevel.COMPLETE,
            message_cost="O(n)",
            requires_keys=False,
            requires_quiescence=False,
            comments="Section 5.3 pipelining optimization of SWEEP",
            in_paper_table=False,
        ),
        AlgorithmInfo(
            name="convergent",
            cls=ConvergentWarehouse,
            architecture="distributed",
            claimed_consistency=ConsistencyLevel.NONE,
            message_cost="O(n)",
            requires_keys=False,
            requires_quiescence=False,
            comments="no compensation; anomaly baseline (not in Table 1)",
            in_paper_table=False,
        ),
        AlgorithmInfo(
            name="recompute",
            cls=RecomputeWarehouse,
            architecture="distributed",
            claimed_consistency=ConsistencyLevel.STRONG,
            message_cost="O(n)",
            requires_keys=False,
            requires_quiescence=False,
            comments="full snapshots per update; huge payloads (baseline)",
            in_paper_table=False,
        ),
    )
}


def algorithm_info(name: str) -> AlgorithmInfo:
    """Look up an algorithm by registry name (raises with suggestions)."""
    try:
        return ALGORITHMS[name]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; available: {sorted(ALGORITHMS)}"
        ) from None


__all__ = ["ALGORITHMS", "AlgorithmInfo", "algorithm_info"]
