"""View partitioning for the sharded warehouse runtime.

A sharded deployment splits the maintained view set across ``n_shards``
warehouse processes.  The unit of placement is a whole view: the paper's
complete-consistency argument (Section 5) is *per view*, so any partition
of the view set preserves each view's guarantee as long as every shard
receives its sources' updates in the original per-source FIFO order.
Nothing about a view's maintenance ever references another view, hence
there is no cross-shard coordination to get wrong -- the entire
correctness story of a sharded run is "each shard is an ordinary
(multi-view) warehouse over a subset of the views".

:func:`partition_views` produces the :class:`ShardPlan`; the default
``hash`` strategy is stable across processes and runs (CRC-32 of the view
name), ``round-robin`` balances small families deterministically, and
``explicit`` assignments support operator-chosen placement.

:func:`ShardPlan.source_fanout` is the router's table: each source update
is fanned out to exactly the shards whose views reference that source
relation, so a shard never sees (or queues, or sweeps) traffic it does
not need.

:func:`view_family` derives a deterministic family of SPJ variants over
one base chain view -- every process of a multi-process sharded run calls
it with the same config-derived base view and obtains the identical
family, which is what lets shard and source processes agree on the plan
without exchanging schemas.
"""

from __future__ import annotations

import json
import zlib
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.relational.predicate import AttrCompare
from repro.relational.relation import Relation
from repro.relational.view import ViewDefinition

STRATEGIES = ("hash", "round-robin")


def stable_shard_of(name: str, n_shards: int) -> int:
    """Process-independent shard for a view name (CRC-32, not ``hash()``).

    Python's builtin ``hash`` of a string is salted per process, which
    would scatter one view to different shards in different processes of
    the same deployment; CRC-32 is fixed by the name alone.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    return zlib.crc32(name.encode("utf-8")) % n_shards


@dataclass(frozen=True)
class ShardPlan:
    """An assignment of every view to exactly one shard."""

    n_shards: int
    views: tuple[ViewDefinition, ...]
    assignment: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        names = [v.name for v in self.views]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate view names: {names!r}")
        missing = [n for n in names if n not in self.assignment]
        if missing:
            raise ValueError(f"views without a shard: {missing!r}")
        bad = {
            name: shard
            for name, shard in self.assignment.items()
            if not 0 <= shard < self.n_shards
        }
        if bad:
            raise ValueError(
                f"assignments outside 0..{self.n_shards - 1}: {bad!r}"
            )

    # ------------------------------------------------------------------
    def views_for(self, shard: int) -> list[ViewDefinition]:
        """This shard's views, in family order (views[0] is its primary)."""
        return [v for v in self.views if self.assignment[v.name] == shard]

    @property
    def active_shards(self) -> list[int]:
        """Shards that host at least one view (others are never launched)."""
        return sorted({self.assignment[v.name] for v in self.views})

    def shard_of(self, view_name: str) -> int:
        return self.assignment[view_name]

    def source_fanout(self) -> dict[str, tuple[int, ...]]:
        """Router table: relation name -> shards whose views reference it.

        An update committed at source ``R`` travels only to
        ``source_fanout()[R]``; every other shard maintains views that do
        not mention ``R`` and must not receive (or count) the update.
        """
        fanout: dict[str, set[int]] = {}
        for view in self.views:
            shard = self.assignment[view.name]
            for name in view.relation_names:
                fanout.setdefault(name, set()).add(shard)
        return {name: tuple(sorted(shards)) for name, shards in fanout.items()}

    def describe(self) -> str:
        parts = []
        for shard in self.active_shards:
            names = [v.name for v in self.views_for(shard)]
            parts.append(f"shard {shard}: {', '.join(names)}")
        return "; ".join(parts)


def partition_views(
    views: Sequence[ViewDefinition],
    n_shards: int,
    strategy: str = "hash",
    explicit: Mapping[str, int] | None = None,
) -> ShardPlan:
    """Assign each view to one of ``n_shards`` shards.

    ``explicit`` (view name -> shard) overrides the strategy entirely and
    must cover every view; ``hash`` is stable placement by view name
    (what a multi-process deployment should use); ``round-robin`` places
    views in family order and is the balanced default for benchmarks.
    """
    views = tuple(views)
    if not views:
        raise ValueError("need at least one view to partition")
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    if explicit is not None:
        assignment = {v.name: int(explicit[v.name]) for v in views}
    elif strategy == "hash":
        assignment = {v.name: stable_shard_of(v.name, n_shards) for v in views}
    elif strategy == "round-robin":
        assignment = {v.name: i % n_shards for i, v in enumerate(views)}
    else:
        raise ValueError(
            f"unknown strategy {strategy!r}; one of {STRATEGIES} or explicit="
        )
    return ShardPlan(n_shards=n_shards, views=views, assignment=assignment)


@dataclass(frozen=True, order=True)
class ShardMember:
    """One member of a replica group: ``replica`` 0 is the primary.

    The label is the member's wire identity -- channel names, durable
    directories, and supervisor argv all derive from it -- so promotion
    (the standby *becoming* the primary) is purely a routing change: the
    standby already holds the primary's state at the same FIFO position.
    """

    shard: int
    replica: int = 0

    def __post_init__(self) -> None:
        if self.shard < 0:
            raise ValueError(f"shard must be >= 0, got {self.shard}")
        if self.replica < 0:
            raise ValueError(f"replica must be >= 0, got {self.replica}")

    @property
    def label(self) -> str:
        """``sh3`` for a primary, ``sh3r1`` for its first standby."""
        if self.replica == 0:
            return f"sh{self.shard}"
        return f"sh{self.shard}r{self.replica}"

    @property
    def is_primary(self) -> bool:
        return self.replica == 0


def parse_member(text: str) -> ShardMember:
    """Parse ``"3"`` or ``"3r1"`` back into a :class:`ShardMember`."""
    raw = text.strip().removeprefix("sh")
    shard_text, sep, replica_text = raw.partition("r")
    try:
        shard = int(shard_text)
        replica = int(replica_text) if sep else 0
    except ValueError:
        raise ValueError(f"not a shard member: {text!r}") from None
    return ShardMember(shard=shard, replica=replica)


@dataclass(frozen=True)
class ReplicaPlan:
    """A :class:`ShardPlan` plus a replica group per active shard.

    ``members_by_shard[s][0]`` is shard ``s``'s current primary; the
    rest are hot standbys consuming duplicates of every frame the
    primary sees (same per-(source, shard) FIFO channels), so any of
    them can take over at the exact FIFO position.  ``slots`` places
    each member on a process slot with anti-affinity: a primary and its
    own standby never share a slot, so one process (or machine) loss
    cannot take out a whole replica group.
    """

    plan: ShardPlan
    replicas: int
    members_by_shard: dict[int, tuple[ShardMember, ...]] = field(
        default_factory=dict
    )
    slots: dict[ShardMember, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.replicas < 0:
            raise ValueError(f"replicas must be >= 0, got {self.replicas}")
        for shard, group in self.members_by_shard.items():
            if not group:
                raise ValueError(f"shard {shard} has an empty replica group")
            if any(m.shard != shard for m in group):
                raise ValueError(
                    f"shard {shard} group references other shards: {group!r}"
                )
            placed = [self.slots[m] for m in group if m in self.slots]
            if len(set(placed)) != len(placed):
                raise ValueError(
                    f"shard {shard} members share a process slot:"
                    f" { {m.label: self.slots.get(m) for m in group} }"
                )

    # ------------------------------------------------------------------
    @property
    def members(self) -> list[ShardMember]:
        """Every member, primaries first within each shard."""
        out: list[ShardMember] = []
        for shard in self.plan.active_shards:
            out.extend(self.members_by_shard[shard])
        return out

    def primary_of(self, shard: int) -> ShardMember:
        return self.members_by_shard[shard][0]

    def standbys_of(self, shard: int) -> tuple[ShardMember, ...]:
        return self.members_by_shard[shard][1:]

    @property
    def n_slots(self) -> int:
        return 1 + max(self.slots.values(), default=0)

    def member_fanout(self) -> dict[str, tuple[ShardMember, ...]]:
        """Dup-fanout table: relation -> every member of each fanned shard.

        The FIFO argument survives duplication because a source sends
        each member its *own* copy of the identical frame sequence over
        that member's own channel: per (source, member) order is the per
        (source, shard) order, so primary and standby install the same
        schedule and stay byte-identical at every position.
        """
        base = self.plan.source_fanout()
        return {
            name: tuple(
                member
                for shard in shards
                for member in self.members_by_shard[shard]
            )
            for name, shards in base.items()
        }

    def promote(self, shard: int) -> "ReplicaPlan":
        """The plan after shard ``shard`` loses its primary.

        The first standby becomes the new primary (keeping its slot);
        a shard with no standby cannot be promoted.
        """
        group = self.members_by_shard[shard]
        if len(group) < 2:
            raise ValueError(
                f"shard {shard} has no standby to promote (group {group!r})"
            )
        members = dict(self.members_by_shard)
        members[shard] = group[1:]
        slots = {m: s for m, s in self.slots.items() if m != group[0]}
        return ReplicaPlan(
            plan=self.plan,
            replicas=self.replicas,
            members_by_shard=members,
            slots=slots,
        )

    def describe(self) -> str:
        parts = []
        for shard in self.plan.active_shards:
            labels = [
                f"{m.label}@slot{self.slots[m]}"
                for m in self.members_by_shard[shard]
            ]
            parts.append(f"shard {shard}: {', '.join(labels)}")
        return "; ".join(parts)


def assign_replicas(plan: ShardPlan, replicas: int = 0) -> ReplicaPlan:
    """Pair every active shard with ``replicas`` hot standbys.

    Process slots are assigned diagonally: with ``S`` active shards the
    slot of replica ``k`` of the ``i``-th active shard is
    ``(i + k) mod n_slots`` where ``n_slots = max(S, replicas + 1)`` --
    so members of one group always land on distinct slots (anti-
    affinity) and, when ``S >= replicas + 1``, no extra slots are needed
    beyond the ``S`` a replica-less deployment already runs.
    """
    if replicas < 0:
        raise ValueError(f"replicas must be >= 0, got {replicas}")
    active = plan.active_shards
    n_slots = max(len(active), replicas + 1)
    members_by_shard: dict[int, tuple[ShardMember, ...]] = {}
    slots: dict[ShardMember, int] = {}
    for i, shard in enumerate(active):
        group = tuple(
            ShardMember(shard=shard, replica=k) for k in range(replicas + 1)
        )
        members_by_shard[shard] = group
        for k, member in enumerate(group):
            slots[member] = (i + k) % n_slots
    return ReplicaPlan(
        plan=plan,
        replicas=replicas,
        members_by_shard=members_by_shard,
        slots=slots,
    )


@dataclass(frozen=True)
class RebalancePlan:
    """One live view migration: move ``view`` to shard ``to_shard``.

    Validated against the launch :class:`ShardPlan`:

    * the view must exist and must not be its donor shard's primary
      (``views_for(donor)[0]``) -- the primary's recorder, inbox and
      wire labels are the shard's identity and are not migratable;
    * the recipient must be an *active* shard (same-chain families fan
      every source to every active shard, so moving a view to an active
      shard changes no fanout set -- the whole FIFO re-route reduces to
      the fencing protocol);
    * donor and recipient must differ.
    """

    plan: ShardPlan
    view: str
    to_shard: int

    def __post_init__(self) -> None:
        names = [v.name for v in self.plan.views]
        if self.view not in names:
            raise ValueError(
                f"unknown view {self.view!r}; have {names!r}"
            )
        donor = self.plan.shard_of(self.view)
        if self.plan.views_for(donor)[0].name == self.view:
            raise ValueError(
                f"view {self.view!r} is shard {donor}'s primary and cannot"
                " migrate; move a non-primary view"
            )
        if self.to_shard not in self.plan.active_shards:
            raise ValueError(
                f"recipient shard {self.to_shard} is not active"
                f" (active: {self.plan.active_shards})"
            )
        if self.to_shard == donor:
            raise ValueError(
                f"view {self.view!r} already lives on shard {donor}"
            )

    @property
    def from_shard(self) -> int:
        return self.plan.shard_of(self.view)

    def result_plan(self) -> ShardPlan:
        """The post-migration assignment (same views, one moved)."""
        explicit = dict(self.plan.assignment)
        explicit[self.view] = self.to_shard
        return partition_views(
            self.plan.views, self.plan.n_shards, explicit=explicit
        )

    def describe(self) -> str:
        return (
            f"move {self.view!r}: shard {self.from_shard} ->"
            f" shard {self.to_shard}"
        )


def view_family(base: ViewDefinition, n_views: int) -> list[ViewDefinition]:
    """A deterministic family of ``n_views`` SPJ variants of ``base``.

    ``views[0]`` is ``base`` itself; each variant ``k`` adds a selection
    ``attr < threshold`` over the last attribute of relation
    ``1 + (k-1) mod n`` with a threshold derived from ``k`` alone -- a
    pure function of ``(base, n_views)``, so every process of a sharded
    deployment derives the identical family from the shared config.
    """
    if n_views < 1:
        raise ValueError(f"n_views must be >= 1, got {n_views}")
    views = [base]
    n = base.n_relations
    for k in range(1, n_views):
        index = 1 + (k - 1) % n
        attr = base.schema_of(index).attributes[-1]
        threshold = 100 + (k * 211) % 800
        views.append(
            ViewDefinition(
                name=f"{base.name}#s{k}",
                relation_names=base.relation_names,
                schemas=base.schemas,
                join_conditions=base.join_conditions,
                selection=AttrCompare(attr, "<", threshold),
                projection=base.projection,
            )
        )
    return views


def canonical_view_bytes(relation: Relation) -> bytes:
    """A byte-stable encoding of a relation's contents.

    Used by the sharded-vs-single equivalence tests: two runs agree iff
    the canonical bytes of every view are identical.  Rows are sorted by
    ``repr`` so heterogeneous value types cannot break the ordering.
    """
    rows = sorted(
        ([list(row), count] for row, count in relation.items()),
        key=repr,
    )
    payload = {"attributes": list(relation.schema.attributes), "rows": rows}
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    ).encode("utf-8")


__all__ = [
    "STRATEGIES",
    "RebalancePlan",
    "ReplicaPlan",
    "ShardMember",
    "ShardPlan",
    "assign_replicas",
    "canonical_view_bytes",
    "parse_member",
    "partition_views",
    "stable_shard_of",
    "view_family",
]
