"""View partitioning for the sharded warehouse runtime.

A sharded deployment splits the maintained view set across ``n_shards``
warehouse processes.  The unit of placement is a whole view: the paper's
complete-consistency argument (Section 5) is *per view*, so any partition
of the view set preserves each view's guarantee as long as every shard
receives its sources' updates in the original per-source FIFO order.
Nothing about a view's maintenance ever references another view, hence
there is no cross-shard coordination to get wrong -- the entire
correctness story of a sharded run is "each shard is an ordinary
(multi-view) warehouse over a subset of the views".

:func:`partition_views` produces the :class:`ShardPlan`; the default
``hash`` strategy is stable across processes and runs (CRC-32 of the view
name), ``round-robin`` balances small families deterministically, and
``explicit`` assignments support operator-chosen placement.

:func:`ShardPlan.source_fanout` is the router's table: each source update
is fanned out to exactly the shards whose views reference that source
relation, so a shard never sees (or queues, or sweeps) traffic it does
not need.

:func:`view_family` derives a deterministic family of SPJ variants over
one base chain view -- every process of a multi-process sharded run calls
it with the same config-derived base view and obtains the identical
family, which is what lets shard and source processes agree on the plan
without exchanging schemas.
"""

from __future__ import annotations

import json
import zlib
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.relational.predicate import AttrCompare
from repro.relational.relation import Relation
from repro.relational.view import ViewDefinition

STRATEGIES = ("hash", "round-robin")


def stable_shard_of(name: str, n_shards: int) -> int:
    """Process-independent shard for a view name (CRC-32, not ``hash()``).

    Python's builtin ``hash`` of a string is salted per process, which
    would scatter one view to different shards in different processes of
    the same deployment; CRC-32 is fixed by the name alone.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    return zlib.crc32(name.encode("utf-8")) % n_shards


@dataclass(frozen=True)
class ShardPlan:
    """An assignment of every view to exactly one shard."""

    n_shards: int
    views: tuple[ViewDefinition, ...]
    assignment: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        names = [v.name for v in self.views]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate view names: {names!r}")
        missing = [n for n in names if n not in self.assignment]
        if missing:
            raise ValueError(f"views without a shard: {missing!r}")
        bad = {
            name: shard
            for name, shard in self.assignment.items()
            if not 0 <= shard < self.n_shards
        }
        if bad:
            raise ValueError(
                f"assignments outside 0..{self.n_shards - 1}: {bad!r}"
            )

    # ------------------------------------------------------------------
    def views_for(self, shard: int) -> list[ViewDefinition]:
        """This shard's views, in family order (views[0] is its primary)."""
        return [v for v in self.views if self.assignment[v.name] == shard]

    @property
    def active_shards(self) -> list[int]:
        """Shards that host at least one view (others are never launched)."""
        return sorted({self.assignment[v.name] for v in self.views})

    def shard_of(self, view_name: str) -> int:
        return self.assignment[view_name]

    def source_fanout(self) -> dict[str, tuple[int, ...]]:
        """Router table: relation name -> shards whose views reference it.

        An update committed at source ``R`` travels only to
        ``source_fanout()[R]``; every other shard maintains views that do
        not mention ``R`` and must not receive (or count) the update.
        """
        fanout: dict[str, set[int]] = {}
        for view in self.views:
            shard = self.assignment[view.name]
            for name in view.relation_names:
                fanout.setdefault(name, set()).add(shard)
        return {name: tuple(sorted(shards)) for name, shards in fanout.items()}

    def describe(self) -> str:
        parts = []
        for shard in self.active_shards:
            names = [v.name for v in self.views_for(shard)]
            parts.append(f"shard {shard}: {', '.join(names)}")
        return "; ".join(parts)


def partition_views(
    views: Sequence[ViewDefinition],
    n_shards: int,
    strategy: str = "hash",
    explicit: Mapping[str, int] | None = None,
) -> ShardPlan:
    """Assign each view to one of ``n_shards`` shards.

    ``explicit`` (view name -> shard) overrides the strategy entirely and
    must cover every view; ``hash`` is stable placement by view name
    (what a multi-process deployment should use); ``round-robin`` places
    views in family order and is the balanced default for benchmarks.
    """
    views = tuple(views)
    if not views:
        raise ValueError("need at least one view to partition")
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    if explicit is not None:
        assignment = {v.name: int(explicit[v.name]) for v in views}
    elif strategy == "hash":
        assignment = {v.name: stable_shard_of(v.name, n_shards) for v in views}
    elif strategy == "round-robin":
        assignment = {v.name: i % n_shards for i, v in enumerate(views)}
    else:
        raise ValueError(
            f"unknown strategy {strategy!r}; one of {STRATEGIES} or explicit="
        )
    return ShardPlan(n_shards=n_shards, views=views, assignment=assignment)


def view_family(base: ViewDefinition, n_views: int) -> list[ViewDefinition]:
    """A deterministic family of ``n_views`` SPJ variants of ``base``.

    ``views[0]`` is ``base`` itself; each variant ``k`` adds a selection
    ``attr < threshold`` over the last attribute of relation
    ``1 + (k-1) mod n`` with a threshold derived from ``k`` alone -- a
    pure function of ``(base, n_views)``, so every process of a sharded
    deployment derives the identical family from the shared config.
    """
    if n_views < 1:
        raise ValueError(f"n_views must be >= 1, got {n_views}")
    views = [base]
    n = base.n_relations
    for k in range(1, n_views):
        index = 1 + (k - 1) % n
        attr = base.schema_of(index).attributes[-1]
        threshold = 100 + (k * 211) % 800
        views.append(
            ViewDefinition(
                name=f"{base.name}#s{k}",
                relation_names=base.relation_names,
                schemas=base.schemas,
                join_conditions=base.join_conditions,
                selection=AttrCompare(attr, "<", threshold),
                projection=base.projection,
            )
        )
    return views


def canonical_view_bytes(relation: Relation) -> bytes:
    """A byte-stable encoding of a relation's contents.

    Used by the sharded-vs-single equivalence tests: two runs agree iff
    the canonical bytes of every view are identical.  Rows are sorted by
    ``repr`` so heterogeneous value types cannot break the ordering.
    """
    rows = sorted(
        ([list(row), count] for row, count in relation.items()),
        key=repr,
    )
    payload = {"attributes": list(relation.schema.attributes), "rows": rows}
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    ).encode("utf-8")


__all__ = [
    "STRATEGIES",
    "ShardPlan",
    "canonical_view_bytes",
    "partition_views",
    "stable_shard_of",
    "view_family",
]
