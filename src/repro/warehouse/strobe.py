"""Strobe (ZGMW96): multi-source maintenance under the key assumption.

Strobe is event-driven.  Deletes are handled *locally*: a delete action
(keyed by the deleted tuple's key) is appended to the action list ``AL``
and registered against every in-flight query so their eventual answers are
filtered.  Inserts trigger a query evaluated source by source; the answer's
rows become insert actions.  Only when the unanswered-query set ``UQS``
drains -- quiescence -- is ``AL`` applied to the materialized view as one
atomic install.

Consequences reproduced here (Section 3 / Table 1):

* strong consistency, because installs only happen at quiescence;
* O(n) messages per insert, zero per delete;
* under a sustained update stream the view is **never** refreshed -- the
  staleness experiment measures exactly that;
* duplicate view rows created by concurrent-insert error terms are
  suppressed using the keys (``deduplicate``).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Generator
from dataclasses import dataclass, field

from repro.relational.delta import Delta
from repro.relational.incremental import PartialView
from repro.relational.relation import Relation
from repro.sources.messages import UpdateNotice
from repro.warehouse.base import WarehouseBase
from repro.warehouse.errors import ProtocolError
from repro.warehouse.keys import (
    deduplicate,
    drop_rows_matching_key,
    key_of_row,
    require_key_preserving,
    view_rows_matching_key,
)


@dataclass
class _InsertAction:
    """AL entry: insert a (deduplicated) view row."""

    row: tuple


@dataclass
class _DeleteAction:
    """AL entry: delete every view row matching a base tuple's key."""

    source_index: int
    key: tuple


@dataclass
class _QueryJob:
    """An in-flight (or queued) insert query."""

    notice: UpdateNotice
    partial: PartialView
    remaining: deque[int]
    request_id: int | None = None
    #: (source_index, key) filters from deletes processed while in flight.
    pending_deletes: list[tuple[int, tuple]] = field(default_factory=list)


class StrobeWarehouse(WarehouseBase):
    """The Strobe algorithm: collect actions, install at quiescence."""

    algorithm_name = "strobe"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        require_key_preserving(self.view, "Strobe")
        self.al: list[_InsertAction | _DeleteAction] = []
        self.work_queue: deque[_QueryJob] = deque()
        self.active: _QueryJob | None = None
        self._processed: list[UpdateNotice] = []
        self.sim.spawn("wh-Strobe", self._run())

    # ------------------------------------------------------------------
    @property
    def uqs_size(self) -> int:
        """Unanswered/unstarted queries (quiescence = 0)."""
        return len(self.work_queue) + (1 if self.active else 0)

    def pending_work(self) -> bool:
        return self.uqs_size > 0

    # ------------------------------------------------------------------
    def _run(self) -> Generator:
        while True:
            msg = yield self.inbox.get()
            if msg.kind == "update":
                self.note_delivery(msg.payload)
                self._handle_update(msg.payload)
            elif msg.kind == "answer":
                self._handle_answer(msg.payload)
            else:  # pragma: no cover - defensive
                raise ProtocolError(f"unexpected message kind {msg.kind!r}")
            self._maybe_install()

    # ------------------------------------------------------------------
    def _handle_update(self, notice: UpdateNotice) -> None:
        """Deletes act locally; inserts enqueue a query (ZGMW96)."""
        i = notice.source_index
        schema = self.view.schema_of(i)
        deletes = notice.delta.negative_part()
        inserts = notice.delta.positive_part()

        for row in deletes.rows():
            key = key_of_row(schema, row)
            self.al.append(_DeleteAction(i, key))
            for job in self._all_jobs():
                job.pending_deletes.append((i, key))
            self.metrics.increment("strobe_local_deletes")

        if inserts:
            order = deque(
                j for j in range(1, self.view.n_relations + 1) if j != i
            )
            job = _QueryJob(
                notice=notice,
                partial=PartialView.initial(self.view, i, inserts),
                remaining=order,
            )
            self.work_queue.append(job)
            self._maybe_start_job()
        self._processed.append(notice)

    def _all_jobs(self):
        if self.active is not None:
            yield self.active
        yield from self.work_queue

    # ------------------------------------------------------------------
    def _maybe_start_job(self) -> None:
        while self.active is None and self.work_queue:
            self.active = self.work_queue.popleft()
            if self.active.remaining:
                self._send_next_step()
            else:
                # single-relation view: nothing to query, complete locally
                self._complete_job()

    def _send_next_step(self) -> None:
        job = self.active
        assert job is not None
        # pick the next remaining source adjacent to the covered range
        for _ in range(len(job.remaining)):
            j = job.remaining[0]
            if job.partial.is_adjacent(j):
                break
            job.remaining.rotate(-1)
        j = job.remaining.popleft()
        request = self.make_sweep_query(j, job.partial)
        job.request_id = request.request_id
        self.send_query(j, request)

    def _handle_answer(self, answer) -> None:
        job = self.active
        if job is None or answer.request_id != job.request_id:
            raise ProtocolError(
                f"unexpected answer {answer.request_id} (active job:"
                f" {job.request_id if job else None})"
            )
        job.partial = answer.partial
        if job.remaining:
            self._send_next_step()
            return
        self._complete_job()
        self._maybe_start_job()

    def _complete_job(self) -> None:
        """Filter the finished answer by raced deletes, dedup, extend AL."""
        job = self.active
        assert job is not None
        view_delta = self.view.finalize(job.partial.delta)
        if not isinstance(view_delta, Delta):
            view_delta = Delta.from_relation(view_delta)
        for source_index, key in job.pending_deletes:
            positions = self.view.key_indices_in_view(source_index)
            view_delta = drop_rows_matching_key(view_delta, positions, key)
        view_delta = deduplicate(view_delta)
        for row in view_delta.rows():
            self.al.append(_InsertAction(row))
        self.active = None

    # ------------------------------------------------------------------
    def _maybe_install(self) -> None:
        """Apply AL atomically once UQS is empty (quiescence)."""
        if self.uqs_size != 0 or not self._processed:
            return
        working: Relation = self.store.relation.copy()
        for action in self.al:
            if isinstance(action, _InsertAction):
                if working.count(action.row) == 0:  # duplicate suppression
                    working.insert(action.row)
            else:
                positions = self.view.key_indices_in_view(action.source_index)
                for row in view_rows_matching_key(working, positions, action.key):
                    working.delete(row, working.count(row))
        delta = Delta(working.schema)
        for row, count in working.items():
            delta.add(row, count)
        for row, count in self.store.relation.items():
            delta.add(row, -count)
        self.al = []
        self.mark_applied(self._processed)
        self.metrics.observe("updates_per_install", len(self._processed))
        self._processed = []
        self.install_view_delta(
            delta, note=f"Strobe quiescent install ({len(delta)} row changes)"
        )


__all__ = ["StrobeWarehouse"]
