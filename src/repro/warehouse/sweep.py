"""SWEEP (paper Section 5): complete consistency with local compensation.

``ViewChange`` processes one update at a time.  Starting from the update
delta it sweeps left (sources ``i-1 .. 1``) and then right (``i+1 .. n``),
shipping the partial view change to each source and receiving back the
join with that source's current relation.  When the answer from source
``j`` returns, any update from ``j`` still sitting in the update message
queue must -- by the FIFO channel property -- have been applied before the
query was evaluated, so its error term ``Delta-Rj |><| TempView`` is
computed *locally* and subtracted.  No compensation queries are ever sent:
message cost is exactly ``2(n-1)`` (query + answer per other source).

Options reproduce the Section 5.3 optimizations:

* ``parallel`` -- run the left and right sweeps concurrently and merge the
  two half-results at the warehouse (halves the sweep's critical path);
* ``merge_queue_updates`` -- coalesce multiple interfering updates from one
  source into a single compensation term (on by default, as in the paper).
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass

from repro.relational.delta import Delta
from repro.relational.incremental import PartialView
from repro.sources.messages import UpdateNotice
from repro.warehouse.base import QueueDrivenWarehouse
from repro.warehouse.errors import ProtocolError


@dataclass(frozen=True)
class SweepOptions:
    """Tunable SWEEP variants (Section 5.3)."""

    parallel: bool = False
    merge_queue_updates: bool = True


def merge_halves(
    left: PartialView, right: PartialView, seed: Delta
) -> PartialView:
    """Combine parallel sweep halves: ``Delta-V = Delta-V_left |><| Delta-V_right``.

    Both halves contain the seed relation's columns (left covers ``1..i``,
    right covers ``i..n``).  Rows are glued on equal seed tuples; since each
    half's count already includes the seed tuple's (possibly negative)
    multiplicity, the product is divided by it once.
    """
    view = left.view
    if left.lo != 1 or right.hi != view.n_relations or left.hi != right.lo:
        raise ProtocolError(
            f"halves cover {left.lo}..{left.hi} and {right.lo}..{right.hi};"
            " expected 1..i and i..n"
        )
    i = left.hi
    width = len(view.schema_of(i))
    out = Delta(view.wide_schema)

    by_seed: dict[tuple, list[tuple[tuple, int]]] = {}
    for rrow, rcount in right.delta.items():
        by_seed.setdefault(rrow[:width], []).append((rrow, rcount))

    for lrow, lcount in left.delta.items():
        seed_row = lrow[len(lrow) - width:]
        seed_count = seed.count(seed_row)
        if seed_count == 0:
            raise ProtocolError(
                f"half-result row {lrow!r} has no seed tuple {seed_row!r}"
            )
        for rrow, rcount in by_seed.get(seed_row, ()):
            numerator = lcount * rcount
            quotient = numerator // seed_count
            if quotient * seed_count != numerator:
                raise ProtocolError(
                    f"count {numerator} of glued row not divisible by seed"
                    f" multiplicity {seed_count}"
                )
            out.add(lrow + rrow[width:], quotient)
    return PartialView(view, 1, view.n_relations, out)


class SweepWarehouse(QueueDrivenWarehouse):
    """The SWEEP algorithm of Figure 4 (optionally with parallel sweeps)."""

    algorithm_name = "sweep"

    def __init__(self, *args, options: SweepOptions | None = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.options = options if options is not None else SweepOptions()

    # ------------------------------------------------------------------
    def view_change(self, notice: UpdateNotice) -> Generator:
        if self.options.parallel:
            result = yield from self._view_change_parallel(notice)
        else:
            result = yield from self._view_change_sequential(notice)
        return result

    # ------------------------------------------------------------------
    # The paper's sequential ViewChange (Figure 4)
    # ------------------------------------------------------------------
    def _view_change_sequential(self, notice: UpdateNotice) -> Generator:
        i = notice.source_index
        partial = PartialView.initial(self.view, i, notice.delta)
        sweep_order = list(range(i - 1, 0, -1)) + list(
            range(i + 1, self.view.n_relations + 1)
        )
        for j in sweep_order:
            temp = partial  # the paper's TempView
            local = self.local_aux_answer(j, partial)
            if local is not None:
                # Covered source: the copy is exactly at this update's
                # position, so the local join needs no compensation.
                partial = local
                continue
            cached = self.local_cached_answer(j, partial)
            if cached is not None:
                partial = self._compensate(j, cached, temp)
                continue
            answer = yield from self.query_and_await(
                j, partial
            )
            partial = self._compensate(j, answer, temp)
        return partial

    # ------------------------------------------------------------------
    # Section 5.3 optimization: left and right sweeps in parallel
    # ------------------------------------------------------------------
    def _view_change_parallel(self, notice: UpdateNotice) -> Generator:
        i = notice.source_index
        n = self.view.n_relations
        seed = PartialView.initial(self.view, i, notice.delta)
        halves = {
            "left": {"partial": seed, "next": i - 1, "stop": 0, "step": -1},
            "right": {"partial": seed, "next": i + 1, "stop": n + 1, "step": +1},
        }
        outstanding: dict[int, tuple[str, PartialView]] = {}

        def launch(side: str) -> None:
            state = halves[side]
            while True:
                j = state["next"]
                if j == state["stop"]:
                    return
                temp = state["partial"]
                local = self.local_aux_answer(j, temp)
                if local is None:
                    cached = self.local_cached_answer(j, temp)
                    if cached is not None:
                        local = self._compensate(j, cached, temp)
                if local is not None:
                    # Answered locally; keep advancing this half without
                    # yielding -- installs cannot interleave mid-sweep.
                    state["partial"] = local
                    state["next"] = j + state["step"]
                    continue
                request = self.make_sweep_query(j, temp)
                self.send_query(j, request)
                outstanding[request.request_id] = (side, temp, j)
                return

        launch("left")
        launch("right")
        while outstanding:
            msg, pending = yield self._answer_box.get()
            self._pending_at_answer = pending
            answer = msg.payload
            if answer.request_id not in outstanding:
                raise ProtocolError(
                    f"unexpected answer for request {answer.request_id}"
                )
            side, temp, j = outstanding.pop(answer.request_id)
            state = halves[side]
            state["partial"] = self._compensate(j, answer.partial, temp)
            state["next"] = j + state["step"]
            launch(side)

        left, right = halves["left"]["partial"], halves["right"]["partial"]
        if left.lo == 1 and left.hi == n:
            return left  # i was an endpoint; one half did all the work
        if right.lo == 1 and right.hi == n:
            return right
        return merge_halves(left, right, seed.delta)

    # ------------------------------------------------------------------
    # On-line local error correction (Section 4)
    # ------------------------------------------------------------------
    def _compensate(
        self, index: int, answer: PartialView, temp: PartialView
    ) -> PartialView:
        """Subtract error terms of interfering updates from source ``index``."""
        pending = self.pending_updates_from(index)
        if not pending:
            return answer
        self.metrics.increment("compensations")
        if self.trace:
            self.trace.record(
                self.sim.now,
                "warehouse",
                "compensate",
                f"src={index} x{len(pending)}",
            )
        if self.options.merge_queue_updates:
            error = temp.extend(index, self.merged_pending_delta(pending))
            return answer.compensate(error)
        result = answer
        for notice in pending:
            error = temp.extend(index, notice.delta)
            result = result.compensate(error)
            self.metrics.increment("compensation_terms")
        return result


__all__ = ["SweepOptions", "SweepWarehouse", "merge_halves"]
