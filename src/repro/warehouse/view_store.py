"""The stored materialized view with tuple counts.

Strict mode (the default) raises :class:`NegativeCountError` when an
install would drive a tuple count negative -- i.e. when a maintenance
algorithm computed a wrong view change.  Correct algorithms never trigger
it; the test suite relies on that.

Tolerant mode instead clamps the count at zero and records an *anomaly*.
The naive convergent baseline runs tolerant, turning the update anomalies
of Section 3 into a measurable counter instead of a crash.
"""

from __future__ import annotations

from repro.relational.delta import Delta
from repro.relational.errors import NegativeCountError
from repro.relational.relation import BagBase, Relation
from repro.relational.view import ViewDefinition


class MaterializedView:
    """The warehouse's view contents plus install bookkeeping."""

    def __init__(
        self,
        view: ViewDefinition,
        initial: Relation | None = None,
        strict: bool = True,
    ):
        self.view = view
        self.strict = strict
        self.anomalies = 0
        self.installs = 0
        schema = view.view_schema
        if initial is not None:
            if initial.schema.attributes != schema.attributes:
                from repro.relational.errors import HeterogeneousSchemaError

                raise HeterogeneousSchemaError(
                    schema.attributes, initial.schema.attributes
                )
            self.relation = initial.copy()
        else:
            self.relation = Relation(schema)
        self._aggregates: list = []

    # ------------------------------------------------------------------
    @classmethod
    def from_states(
        cls,
        view: ViewDefinition,
        states: dict[str, Relation],
        strict: bool = True,
    ) -> "MaterializedView":
        """Initialize to the correct view over ``states`` (paper Figure 4:
        'V: RELATION; initialized to the correct view')."""
        return cls(view, view.evaluate(states), strict=strict)

    # ------------------------------------------------------------------
    def attach_aggregate(self, group_by, aggregates) -> "AggregateView":
        """Create and register an aggregate view maintained on install.

        The aggregate is initialized from the current contents and then
        updated incrementally from every installed delta.  Requires strict
        mode (aggregates over anomalous counts would be meaningless).
        """
        from repro.relational.aggregate import AggregateView

        if not self.strict:
            raise ValueError(
                "aggregate views require a strict materialized view"
            )
        agg = AggregateView.over_relation(
            self.relation, tuple(group_by), tuple(aggregates)
        )
        self._aggregates.append(agg)
        return agg

    @property
    def aggregates(self) -> tuple:
        """Attached aggregate views."""
        return tuple(self._aggregates)

    def apply(self, delta: BagBase) -> None:
        """Install a view-schema delta (``V = V + Delta-V``)."""
        self.installs += 1
        if self.strict:
            self.relation.apply_delta(delta)
            for agg in self._aggregates:
                agg.apply(delta)
            return
        for row, count in delta.items():
            current = self.relation.count(row)
            new = current + count
            if new < 0:
                self.anomalies += 1
                new = 0
            try:
                self.relation.add(row, new - current)
            except NegativeCountError:  # pragma: no cover - defensive
                self.anomalies += 1

    def install_wide(self, wide_delta: Delta) -> None:
        """Finalize (select + project) a wide sweep result and install it."""
        self.apply(self.view.finalize(wide_delta))

    def snapshot(self) -> Relation:
        """An independent copy of the current contents."""
        return self.relation.copy()

    # ------------------------------------------------------------------
    def count(self, row: tuple) -> int:
        """Multiplicity of a view row."""
        return self.relation.count(row)

    def __len__(self) -> int:
        return len(self.relation)

    def __repr__(self) -> str:
        mode = "strict" if self.strict else f"tolerant({self.anomalies} anomalies)"
        return (
            f"MaterializedView({self.view.name}, {self.relation.distinct_count}"
            f" rows, {mode})"
        )


__all__ = ["MaterializedView"]
