"""Seeded workload generation: schemas, data, update streams, scenarios.

Generated workloads drive both the test suite's randomized checks and the
benchmark harness.  All generation is deterministic given the experiment
seed (via :class:`~repro.simulation.rng.RngRegistry` streams).

The canonical chain-join workload mirrors the paper's model: relation ``i``
has a unique key ``K{i}``, a foreign attribute ``F{i}`` joining to
``K{i+1}``, and a payload ``V{i}``.  Key uniqueness is maintained by
construction so the same workload is valid for the Strobe family (which
requires keys) and for SWEEP (which does not care).
"""

from repro.workloads.data_gen import generate_initial_states
from repro.workloads.paper_example import (
    PAPER_EXPECTED_TRAJECTORY,
    paper_example_states,
    paper_example_updates,
    paper_example_view,
)
from repro.workloads.schema_gen import chain_view
from repro.workloads.stream import UpdateStreamConfig, generate_update_schedules
from repro.workloads.scenarios import (
    Workload,
    alternating_interference_workload,
    make_workload,
)

__all__ = [
    "PAPER_EXPECTED_TRAJECTORY",
    "UpdateStreamConfig",
    "Workload",
    "alternating_interference_workload",
    "chain_view",
    "generate_initial_states",
    "generate_update_schedules",
    "make_workload",
    "paper_example_states",
    "paper_example_updates",
    "paper_example_view",
]
