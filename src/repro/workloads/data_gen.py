"""Initial base-relation contents for generated chain views.

Rows of relation ``i`` are ``(k, f, v)``: a fresh unique key, a foreign
value referencing relation ``i+1``'s key domain, and a random payload.
``match_fraction`` controls join selectivity: that fraction of foreign
values point at live keys of the next relation, the rest miss.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.relational.relation import Relation
from repro.relational.view import ViewDefinition


@dataclass
class GeneratorState:
    """Mutable generation bookkeeping shared with the update stream.

    ``next_key[i]`` is the next unused key of relation ``i`` (keys are never
    reused, satisfying the Strobe family's unique-key assumption), and
    ``live_rows[i]`` tracks rows present after all generated operations so
    deletes are always valid when replayed.
    """

    next_key: dict[int, int] = field(default_factory=dict)
    live_rows: dict[int, list[tuple]] = field(default_factory=dict)

    def fresh_key(self, index: int) -> int:
        key = self.next_key[index]
        self.next_key[index] = key + 1
        return key

    def live_keys(self, index: int) -> list[int]:
        return [row[0] for row in self.live_rows[index]]


def foreign_value(
    state: GeneratorState,
    view: ViewDefinition,
    index: int,
    rng: random.Random,
    match_fraction: float,
) -> int:
    """A foreign value for relation ``index``: usually a live next-key."""
    if index >= view.n_relations:
        return rng.randrange(1_000_000)  # last relation: F is inert payload
    candidates = state.live_keys(index + 1)
    if candidates and rng.random() < match_fraction:
        return rng.choice(candidates)
    return 1_000_000 + rng.randrange(1_000_000)  # guaranteed miss


def generate_initial_states(
    view: ViewDefinition,
    rng: random.Random,
    rows_per_relation: int = 20,
    match_fraction: float = 0.8,
) -> tuple[dict[str, Relation], GeneratorState]:
    """Populate every relation; returns states plus generator bookkeeping.

    Relations are filled right-to-left so foreign values can reference
    already-generated keys of the next relation.
    """
    if rows_per_relation < 0:
        raise ValueError("rows_per_relation must be >= 0")
    if not 0.0 <= match_fraction <= 1.0:
        raise ValueError("match_fraction must be in [0, 1]")
    state = GeneratorState()
    states: dict[str, Relation] = {}
    for index in range(view.n_relations, 0, -1):
        schema = view.schema_of(index)
        state.next_key[index] = 1
        state.live_rows[index] = []
        relation = Relation(schema)
        for _ in range(rows_per_relation):
            row = (
                state.fresh_key(index),
                foreign_value(state, view, index, rng, match_fraction),
                rng.randrange(1000),
            )
            relation.insert(row)
            state.live_rows[index].append(row)
        states[view.name_of(index)] = relation
    return states, state


__all__ = ["GeneratorState", "foreign_value", "generate_initial_states"]
