"""The paper's Section 5.2 / Figure 5 worked example, verbatim.

Three relations, the SPJ view ``V = pi_[D,F] (R1 |><|_{B=C} R2 |><|_{D=E}
R3)``, initial contents producing ``{(7,8)[2]}``, and the three updates

* ``Delta-R2 = +(3,5)``
* ``Delta-R3 = -(7,8)``
* ``Delta-R1 = -(2,3)``

with the expected view trajectory of Figure 5.  Used by tests (SWEEP must
reproduce every intermediate state even when the updates race) and by the
``bench_fig5_example`` benchmark.
"""

from __future__ import annotations

from repro.relational.delta import Delta
from repro.relational.predicate import AttrEq
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.view import ViewDefinition
from repro.sources.updater import ScheduledUpdate

R1_SCHEMA = Schema(("A", "B"))
R2_SCHEMA = Schema(("C", "D"))
R3_SCHEMA = Schema(("E", "F"))

#: Figure 5's view states after each update, as (rows -> count) dicts.
PAPER_EXPECTED_TRAJECTORY: tuple[dict[tuple, int], ...] = (
    {(7, 8): 2},                # initial state
    {(5, 6): 2, (7, 8): 2},    # after Delta-R2 = +(3,5)
    {(5, 6): 2},                # after Delta-R3 = -(7,8)
    {(5, 6): 1},                # after Delta-R1 = -(2,3)
)


def paper_example_view() -> ViewDefinition:
    """The Section 5.2 view definition."""
    return ViewDefinition(
        name="V",
        relation_names=("R1", "R2", "R3"),
        schemas=(R1_SCHEMA, R2_SCHEMA, R3_SCHEMA),
        join_conditions=(AttrEq("B", "C"), AttrEq("D", "E")),
        projection=("D", "F"),
    )


def paper_example_states() -> dict[str, Relation]:
    """Figure 5's initial relation contents."""
    return {
        "R1": Relation(R1_SCHEMA, [(1, 3), (2, 3)]),
        "R2": Relation(R2_SCHEMA, [(3, 7)]),
        "R3": Relation(R3_SCHEMA, [(5, 6), (7, 8)]),
    }


def paper_example_updates(
    spacing: float = 1.0, start: float = 1.0
) -> dict[int, list[ScheduledUpdate]]:
    """The three updates, committed ``spacing`` time units apart.

    A small ``spacing`` relative to channel latency makes all three updates
    concurrent with each other's sweeps -- exactly the scenario Section 5.2
    walks through; a large one reproduces the sequential Figure 5 run.
    """
    return {
        2: [ScheduledUpdate(start, Delta.insert(R2_SCHEMA, (3, 5)))],
        3: [ScheduledUpdate(start + spacing, Delta.delete(R3_SCHEMA, (7, 8)))],
        1: [ScheduledUpdate(start + 2 * spacing, Delta.delete(R1_SCHEMA, (2, 3)))],
    }


__all__ = [
    "PAPER_EXPECTED_TRAJECTORY",
    "paper_example_states",
    "paper_example_updates",
    "paper_example_view",
]
