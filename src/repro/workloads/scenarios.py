"""Complete workloads: view + initial data + update schedules.

:func:`make_workload` is the standard generator used by the harness;
:func:`alternating_interference_workload` builds the adversarial pattern of
Section 6.2 -- two sources updating in lockstep so that each update
interferes with the sweep of the previous one, the case that makes
unguarded Nested SWEEP oscillate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.relational.delta import Delta
from repro.relational.relation import Relation
from repro.relational.view import ViewDefinition
from repro.sources.updater import ScheduledUpdate
from repro.workloads.data_gen import GeneratorState, generate_initial_states
from repro.workloads.schema_gen import chain_view
from repro.workloads.stream import UpdateStreamConfig, generate_update_schedules


@dataclass
class Workload:
    """Everything the harness needs to wire one experiment."""

    view: ViewDefinition
    initial_states: dict[str, Relation]
    schedules: dict[int, list[ScheduledUpdate]]
    generator_state: GeneratorState | None = None
    description: str = ""

    @property
    def total_updates(self) -> int:
        """Number of update transactions across all sources."""
        return sum(len(s) for s in self.schedules.values())

    def last_commit_time(self) -> float:
        """Latest scheduled commit time (0.0 when there are no updates)."""
        times = [u.time for sched in self.schedules.values() for u in sched]
        return max(times, default=0.0)


def make_workload(
    n_sources: int,
    rng: random.Random,
    rows_per_relation: int = 20,
    stream: UpdateStreamConfig | None = None,
    project_keys: bool = True,
    match_fraction: float = 0.8,
) -> Workload:
    """The standard chain-join workload."""
    view = chain_view(n_sources, project_keys=project_keys)
    states, gen_state = generate_initial_states(
        view, rng, rows_per_relation=rows_per_relation,
        match_fraction=match_fraction,
    )
    config = stream if stream is not None else UpdateStreamConfig()
    schedules = generate_update_schedules(view, gen_state, rng, config)
    return Workload(
        view=view,
        initial_states=states,
        schedules=schedules,
        generator_state=gen_state,
        description=(
            f"chain({n_sources}) rows={rows_per_relation}"
            f" updates={config.n_updates} ia={config.mean_interarrival}"
        ),
    )


def alternating_interference_workload(
    n_sources: int,
    rng: random.Random,
    n_rounds: int = 6,
    spacing: float = 0.5,
    rows_per_relation: int = 10,
    hot_sources: tuple[int, int] = (1, 2),
) -> Workload:
    """Section 6.2's adversary: sources ``hot_sources`` alternate updates
    spaced far below the sweep round-trip, so each interferes with the
    sweep triggered by the previous one."""
    if n_sources < 2:
        raise ValueError("alternating interference needs at least 2 sources")
    a, b = hot_sources
    view = chain_view(n_sources, project_keys=True)
    states, gen_state = generate_initial_states(
        view, rng, rows_per_relation=rows_per_relation
    )
    schedules: dict[int, list[ScheduledUpdate]] = {a: [], b: []}
    time = 1.0
    for _ in range(n_rounds):
        for index in (a, b):
            schema = view.schema_of(index)
            row = (
                gen_state.fresh_key(index),
                rng.randrange(1_000_000),
                rng.randrange(1000),
            )
            gen_state.live_rows[index].append(row)
            schedules[index].append(ScheduledUpdate(time, Delta.insert(schema, row)))
            time += spacing
    return Workload(
        view=view,
        initial_states=states,
        schedules=schedules,
        generator_state=gen_state,
        description=f"alternating interference x{n_rounds} (spacing {spacing})",
    )


__all__ = ["Workload", "alternating_interference_workload", "make_workload"]
