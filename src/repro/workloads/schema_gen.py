"""Chain-join view generation.

``chain_view(n)`` builds the paper's canonical shape::

    V = pi (R1 |><| R2 |><| ... |><| Rn)    with  Ri.F{i} = R{i+1}.K{i+1}

Each relation ``Ri[K{i}, F{i}, V{i}]`` declares ``K{i}`` as its key.  The
default projection keeps every key plus the last relation's payload, which
satisfies the Strobe family's assumption; ``project_keys=False`` projects
payloads only, producing a view the Strobe family must *reject* and SWEEP
handles fine (a property the paper emphasizes).
"""

from __future__ import annotations

from repro.relational.predicate import AttrEq, Predicate
from repro.relational.schema import Schema
from repro.relational.view import ViewDefinition


def relation_schema(index: int) -> Schema:
    """Schema of generated relation ``index``: key, foreign ref, payload."""
    return Schema(
        (f"K{index}", f"F{index}", f"V{index}"),
        key=(f"K{index}",),
    )


def chain_view(
    n: int,
    project_keys: bool = True,
    selection: Predicate | None = None,
    name: str = "V",
) -> ViewDefinition:
    """A chain-join view over ``n`` generated relations."""
    if n < 1:
        raise ValueError(f"need at least one relation, got {n}")
    schemas = tuple(relation_schema(i) for i in range(1, n + 1))
    conditions = tuple(
        AttrEq(f"F{i}", f"K{i + 1}") for i in range(1, n)
    )
    if project_keys:
        projection = [f"K{i}" for i in range(1, n + 1)] + [f"V{n}"]
    else:
        projection = [f"V{i}" for i in range(1, n + 1)]
    view = ViewDefinition(
        name=name,
        relation_names=tuple(f"R{i}" for i in range(1, n + 1)),
        schemas=schemas,
        join_conditions=conditions,
        selection=selection,
        projection=projection,
    )
    view.validate_chain_connectivity()
    return view


__all__ = ["chain_view", "relation_schema"]
