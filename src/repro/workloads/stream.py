"""Update stream generation: autonomous, seeded, always-valid schedules.

Updates are generated as one global arrival process (configurable
inter-arrival distribution) and assigned to sources; each source's own
sequence is therefore time-ordered, matching the paper's autonomous-source
model.  Deletes always target rows that are live *at their position in the
schedule*, so replays never violate base-relation integrity; inserted keys
are always fresh.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.relational.delta import Delta
from repro.relational.view import ViewDefinition
from repro.sources.updater import ScheduledUpdate
from repro.workloads.data_gen import GeneratorState, foreign_value


@dataclass(frozen=True)
class UpdateStreamConfig:
    """Knobs of the generated update stream."""

    n_updates: int = 20
    mean_interarrival: float = 10.0
    distribution: str = "exponential"  # "exponential" | "uniform" | "fixed"
    insert_fraction: float = 0.6
    match_fraction: float = 0.8
    txn_fraction: float = 0.0  # probability an update is a multi-row txn
    txn_max_rows: int = 3
    #: probability an update is a *global* transaction spanning 2-3 sources
    #: (update type 3; handled atomically by GlobalSweepWarehouse).
    global_txn_fraction: float = 0.0
    start_time: float = 1.0
    #: Restrict updates to these source indices (None = all).
    sources: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.n_updates < 0:
            raise ValueError("n_updates must be >= 0")
        if self.mean_interarrival <= 0:
            raise ValueError("mean_interarrival must be > 0")
        if self.distribution not in ("exponential", "uniform", "fixed"):
            raise ValueError(f"unknown distribution {self.distribution!r}")
        if not 0.0 <= self.insert_fraction <= 1.0:
            raise ValueError("insert_fraction must be in [0, 1]")
        if not 0.0 <= self.txn_fraction <= 1.0:
            raise ValueError("txn_fraction must be in [0, 1]")
        if not 0.0 <= self.global_txn_fraction <= 1.0:
            raise ValueError("global_txn_fraction must be in [0, 1]")
        if self.txn_max_rows < 1:
            raise ValueError("txn_max_rows must be >= 1")


def _interarrival(config: UpdateStreamConfig, rng: random.Random) -> float:
    if config.distribution == "exponential":
        return rng.expovariate(1.0 / config.mean_interarrival)
    if config.distribution == "uniform":
        return rng.uniform(0.0, 2.0 * config.mean_interarrival)
    return config.mean_interarrival


def _one_op(
    view: ViewDefinition,
    state: GeneratorState,
    index: int,
    rng: random.Random,
    config: UpdateStreamConfig,
    delta: Delta,
) -> None:
    """Append one insert or delete for source ``index`` to ``delta``."""
    live = state.live_rows[index]
    do_insert = rng.random() < config.insert_fraction or not live
    if do_insert:
        row = (
            state.fresh_key(index),
            foreign_value(state, view, index, rng, config.match_fraction),
            rng.randrange(1000),
        )
        delta.add(row, +1)
        live.append(row)
    else:
        victim = live.pop(rng.randrange(len(live)))
        delta.add(victim, -1)


def generate_update_schedules(
    view: ViewDefinition,
    state: GeneratorState,
    rng: random.Random,
    config: UpdateStreamConfig,
) -> dict[int, list[ScheduledUpdate]]:
    """Per-source schedules of :class:`ScheduledUpdate` for the simulator."""
    sources = (
        list(config.sources)
        if config.sources is not None
        else list(range(1, view.n_relations + 1))
    )
    for s in sources:
        if not 1 <= s <= view.n_relations:
            raise ValueError(f"source index {s} out of range 1..{view.n_relations}")

    schedules: dict[int, list[ScheduledUpdate]] = {s: [] for s in sources}
    time = config.start_time
    txn_counter = 0
    for _ in range(config.n_updates):
        if (
            config.global_txn_fraction > 0
            and len(sources) >= 2
            and rng.random() < config.global_txn_fraction
        ):
            # A global transaction: one part at each of 2-3 sources,
            # committing (locally) at the same instant.
            n_parts = rng.randint(2, min(3, len(sources)))
            participants = rng.sample(sources, n_parts)
            txn_counter += 1
            txn_id = f"gtxn-{txn_counter}"
            for index in participants:
                delta = Delta(view.schema_of(index))
                _one_op(view, state, index, rng, config, delta)
                if delta:
                    schedules[index].append(
                        ScheduledUpdate(time, delta, txn_id=txn_id,
                                        txn_total=n_parts)
                    )
            # a part whose ops netted out still counts toward txn_total,
            # which would wedge the warehouse; re-tag with the real count
            real_parts = [
                (idx, i)
                for idx in participants
                for i, u in enumerate(schedules[idx])
                if u.txn_id == txn_id
            ]
            if len(real_parts) != n_parts:
                for idx, i in real_parts:
                    old = schedules[idx][i]
                    schedules[idx][i] = ScheduledUpdate(
                        old.time, old.delta, txn_id=txn_id,
                        txn_total=len(real_parts),
                    )
        else:
            index = rng.choice(sources)
            schema = view.schema_of(index)
            delta = Delta(schema)
            n_ops = 1
            if config.txn_fraction > 0 and rng.random() < config.txn_fraction:
                n_ops = rng.randint(2, config.txn_max_rows)
            for _ in range(n_ops):
                _one_op(view, state, index, rng, config, delta)
            if delta:  # ops may net out to nothing; skip empty transactions
                schedules[index].append(ScheduledUpdate(time, delta))
        time += _interarrival(config, rng)
    return schedules


__all__ = ["UpdateStreamConfig", "generate_update_schedules"]
