"""Advisor tests: the Table 1 decision surface, executable."""

import pytest

from repro.analysis.advisor import WorkloadFacts, explain, recommend
from repro.consistency.levels import ConsistencyLevel


def facts(**overrides):
    base = dict(
        n_sources=4, update_rate=0.01, latency=5.0,
        required_consistency=ConsistencyLevel.STRONG,
        view_has_all_keys=False, centralized_ok=False,
    )
    base.update(overrides)
    return WorkloadFacts(**base)


def names(recs):
    return [r.name for r in recs]


class TestQualification:
    def test_complete_requirement_filters(self):
        recs = recommend(facts(required_consistency=ConsistencyLevel.COMPLETE))
        assert set(names(recs)) <= {"sweep", "pipelined-sweep", "c-strobe",
                                    "bootstrap-sweep"}
        assert "nested-sweep" not in names(recs)

    def test_complete_without_keys_excludes_cstrobe(self):
        recs = recommend(facts(
            required_consistency=ConsistencyLevel.COMPLETE,
            view_has_all_keys=False,
        ))
        assert "c-strobe" not in names(recs)
        assert "sweep" in names(recs)

    def test_keys_enable_strobe_family(self):
        recs = recommend(facts(view_has_all_keys=True))
        assert "c-strobe" in names(recs)

    def test_centralized_enables_eca(self):
        assert "eca" not in names(recommend(facts()))
        assert "eca" in names(recommend(facts(centralized_ok=True)))

    def test_fresh_view_excludes_quiescent_under_load(self):
        busy = facts(update_rate=0.1, needs_fresh_view=True,
                     view_has_all_keys=True, centralized_ok=True)
        recs = recommend(busy)
        assert "strobe" not in names(recs)
        assert "eca" not in names(recs)

    def test_quiescent_ok_when_calm(self):
        calm = facts(update_rate=0.0005, needs_fresh_view=True,
                     view_has_all_keys=True)
        assert "strobe" in names(recommend(calm))

    def test_global_txns_require_global_sweep(self):
        recs = recommend(facts(has_global_transactions=True))
        assert names(recs) == ["global-sweep"]
        assert "global-sweep" not in names(recommend(facts()))

    def test_baselines_never_recommended(self):
        for rec in recommend(facts(view_has_all_keys=True, centralized_ok=True)):
            assert rec.name not in ("convergent", "recompute")

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadFacts(n_sources=0, update_rate=1, latency=1)
        with pytest.raises(ValueError):
            WorkloadFacts(n_sources=2, update_rate=-1, latency=1)


class TestRanking:
    def test_nested_ranks_first_under_bursts(self):
        busy = facts(update_rate=0.05)  # rho = 1.5: heavy amortization
        recs = recommend(busy)
        assert recs[0].name == "nested-sweep"

    def test_complete_under_load_prefers_pipelined_on_lag(self):
        busy = facts(update_rate=0.05,
                     required_consistency=ConsistencyLevel.COMPLETE)
        recs = {r.name: r for r in recommend(busy)}
        assert recs["pipelined-sweep"].predicted_install_lag is not None
        assert recs["sweep"].predicted_install_lag is None  # unstable

    def test_messages_prediction_matches_model(self):
        recs = {r.name: r for r in recommend(facts())}
        assert recs["sweep"].predicted_msgs_per_update == 6.0


class TestExplain:
    def test_report_renders(self):
        text = explain(facts(view_has_all_keys=True))
        assert "rho" in text
        assert "1." in text and "msgs/update" in text

    def test_impossible_constraints_reported(self):
        # complete + no keys + global txns -> nothing qualifies
        text = explain(facts(
            required_consistency=ConsistencyLevel.COMPLETE,
            has_global_transactions=True,
        ))
        assert "no registered algorithm" in text
