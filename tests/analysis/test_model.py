"""Analytical model tests: internal sanity plus validation vs simulation."""

import math

import pytest

from repro.analysis.model import (
    eca_expected_pending,
    eca_expected_terms,
    expected_compensation_events,
    nested_updates_per_install,
    sweep_duration,
    sweep_install_lag,
    sweep_messages_per_update,
    sweep_utilization,
)
from repro.harness.config import ExperimentConfig
from repro.harness.runner import run_experiment


class TestModelSanity:
    def test_sweep_messages(self):
        assert sweep_messages_per_update(1) == 0
        assert sweep_messages_per_update(4) == 6
        with pytest.raises(ValueError):
            sweep_messages_per_update(0)

    def test_sweep_duration(self):
        assert sweep_duration(4, 5.0) == 30.0
        assert sweep_duration(4, 5.0, service_time=2.0) == 36.0
        with pytest.raises(ValueError):
            sweep_duration(0, 1.0)

    def test_compensation_monotone_in_rate(self):
        lo = expected_compensation_events(4, 0.1, 5.0)
        hi = expected_compensation_events(4, 1.0, 5.0)
        assert 0 < lo < hi < 3  # bounded by n-1

    def test_single_source_never_compensates(self):
        assert expected_compensation_events(1, 10.0, 5.0) == 0.0

    def test_install_lag_regimes(self):
        assert sweep_install_lag(3, 0.001, 5.0) == pytest.approx(
            sweep_duration(3, 5.0), rel=0.05
        )
        assert sweep_install_lag(3, 1.0, 5.0) == math.inf

    def test_utilization(self):
        assert sweep_utilization(3, 0.01, 5.0) == pytest.approx(0.2)

    def test_nested_absorption_regimes(self):
        assert nested_updates_per_install(3, 0.001, 5.0) == pytest.approx(1.0, abs=0.05)
        assert nested_updates_per_install(3, 1.0, 5.0) == math.inf

    def test_eca_models(self):
        assert eca_expected_pending(0.05, 5.0) == pytest.approx(0.5)
        assert eca_expected_terms(0.05, 5.0) == pytest.approx(2.0)
        assert eca_expected_terms(0.2, 5.0) == math.inf


def simulate(algorithm, lam, n=4, latency=5.0, n_updates=40, seed=11, **kw):
    return run_experiment(
        ExperimentConfig(
            algorithm=algorithm,
            seed=seed,
            n_sources=n,
            n_updates=n_updates,
            mean_interarrival=1.0 / lam,
            latency=latency,
            latency_model="exponential",
            interarrival_distribution="exponential",
            match_fraction=1.0,
            insert_fraction=0.5,
            rows_per_relation=8,
            check_consistency=False,
            **kw,
        )
    )


class TestModelVsSimulation:
    """Validation bands: first-order models vs measured runs."""

    def test_sweep_messages_exact(self):
        result = simulate("sweep", lam=0.2)
        assert result.messages_per_update == sweep_messages_per_update(4)

    def test_compensation_events_band(self):
        """Low utilization: the in-flight-window model is a tight-ish
        lower bound (within ~2.5x)."""
        n, lam, latency = 4, 0.02, 5.0  # rho = lam * 2L(n-1) = 0.6
        result = simulate("sweep", lam=lam, n=n, latency=latency, n_updates=60)
        measured = result.metrics.counters.get("compensations", 0) / 60
        predicted = expected_compensation_events(n, lam, latency)
        assert predicted <= measured * 1.5 + 0.1  # lower-bound character
        assert measured <= predicted * 4 + 0.2  # same order of magnitude

    def test_install_lag_band_stable_regime(self):
        n, lam, latency = 3, 0.02, 5.0  # rho = 0.4
        result = simulate("sweep", lam=lam, n=n, latency=latency, n_updates=60)
        predicted = sweep_install_lag(n, lam, latency)
        measured = result.mean_install_delay
        assert predicted / 3 <= measured <= predicted * 3

    def test_unstable_regime_lag_grows_with_stream_length(self):
        n, lam, latency = 4, 0.2, 5.0  # rho = 6 >> 1 -> model says inf
        assert sweep_install_lag(n, lam, latency) == math.inf
        short = simulate("sweep", lam=lam, n=n, latency=latency, n_updates=20)
        long = simulate("sweep", lam=lam, n=n, latency=latency, n_updates=60)
        assert long.mean_install_delay > 2 * short.mean_install_delay

    def test_nested_absorption_band(self):
        n, latency = 4, 5.0
        lo = simulate("nested-sweep", lam=0.01, n=n, latency=latency, n_updates=40)
        measured_lo = lo.updates_delivered / max(1, lo.installs)
        predicted_lo = nested_updates_per_install(n, 0.01, latency)  # ~1.4
        assert measured_lo <= predicted_lo * 3
        # supercritical: model says the whole stream folds into one install
        hi = simulate("nested-sweep", lam=0.5, n=n, latency=latency, n_updates=40)
        assert nested_updates_per_install(n, 0.5, latency) == math.inf
        assert hi.installs <= 3

    def test_eca_terms_band(self):
        latency = 5.0
        calm = simulate("eca", lam=0.02, latency=latency, n_updates=40)
        measured = calm.metrics.mean_observation("eca_query_terms")
        predicted = eca_expected_terms(0.02, latency)  # K=0.2 -> 1.25
        assert predicted / 2.5 <= measured <= predicted * 2.5
        # supercritical: model diverges, measured terms far exceed calm
        busy = simulate("eca", lam=0.5, latency=latency, n_updates=40)
        assert eca_expected_terms(0.5, latency) == math.inf
        assert busy.metrics.mean_observation("eca_query_terms") > 4 * measured
