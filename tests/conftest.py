"""Shared fixtures: the paper's Section 5.2 view and initial data."""

import pytest

from repro.relational.predicate import AttrEq
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.view import ViewDefinition

R1_SCHEMA = Schema(("A", "B"))
R2_SCHEMA = Schema(("C", "D"))
R3_SCHEMA = Schema(("E", "F"))


@pytest.fixture
def paper_view() -> ViewDefinition:
    """V = pi_[D,F] (R1[A,B] |><|_{B=C} R2[C,D] |><|_{D=E} R3[E,F])."""
    return ViewDefinition(
        name="V",
        relation_names=("R1", "R2", "R3"),
        schemas=(R1_SCHEMA, R2_SCHEMA, R3_SCHEMA),
        join_conditions=(AttrEq("B", "C"), AttrEq("D", "E")),
        projection=("D", "F"),
    )


@pytest.fixture
def paper_states() -> dict[str, Relation]:
    """Figure 5's initial relation contents."""
    return {
        "R1": Relation(R1_SCHEMA, [(1, 3), (2, 3)]),
        "R2": Relation(R2_SCHEMA, [(3, 7)]),
        "R3": Relation(R3_SCHEMA, [(5, 6), (7, 8)]),
    }
