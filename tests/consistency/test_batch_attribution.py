"""Batch-aware oracle accounting: attribution, completeness, staleness.

Positive direction: on real runs -- per-update SWEEP and the batching
scheduler -- every install is attributed to exactly its member updates,
the batch-aware completeness check passes, and per-update staleness has
one entry per delivered update regardless of batching.

Negative direction (the check must *catch* things): dropped installs,
regressing or over-claiming vectors, batches that are not delivery-order
prefixes, and installs whose content does not match their batch boundary
are each flagged with a distinct diagnostic.
"""

import pytest

from repro.consistency.checker import attribute_installs, check_batched_complete
from repro.consistency.levels import ConsistencyLevel
from repro.harness.config import ExperimentConfig
from repro.harness.runner import run_experiment
from repro.warehouse.batched import BatchedSweepWarehouse
from repro.warehouse.registry import ALGORITHMS, AlgorithmInfo

WORKLOAD = dict(
    n_sources=3, n_updates=12, seed=0, mean_interarrival=2.0,
    check_consistency=True,
)


@pytest.fixture(scope="module")
def sweep_result():
    return run_experiment(ExperimentConfig(algorithm="sweep", **WORKLOAD))


@pytest.fixture(scope="module")
def batched_result():
    return run_experiment(
        ExperimentConfig(algorithm="batched-sweep", batch_max=4, **WORKLOAD)
    )


# ---------------------------------------------------------------------------
# Positive: real runs attribute cleanly
# ---------------------------------------------------------------------------

class TestAttribution:
    def test_per_update_sweep_attributes_one_to_one(self, sweep_result):
        attributions = sweep_result.recorder.attribute_installs()
        assert [a.batch_size for a in attributions] == [1] * 12
        members = [n for a in attributions for n in a.members]
        assert [n.delivery_seq for n in members] == list(range(1, 13))

    def test_batched_sweep_attributes_composite_installs(self, batched_result):
        attributions = batched_result.recorder.attribute_installs()
        sizes = [a.batch_size for a in attributions]
        assert sum(sizes) == 12  # every update attributed exactly once
        assert max(sizes) > 1  # and at least one install is composite
        assert all(size <= 4 for size in sizes)  # batch_max respected

    def test_members_are_contiguous_delivery_prefixes(self, batched_result):
        covered = 0
        for attribution in batched_result.recorder.attribute_installs():
            got = sorted(n.delivery_seq for n in attribution.members)
            assert got == list(range(covered + 1, covered + 1 + len(got)))
            covered += len(got)

    def test_batched_check_passes_for_both_schedulers(
        self, sweep_result, batched_result
    ):
        for result in (sweep_result, batched_result):
            verdict = result.recorder.check_batched()
            assert verdict.ok, verdict.detail
            assert verdict.method == "batched"


class TestPerUpdateStaleness:
    def test_one_entry_per_update_even_when_batched(self, batched_result):
        staleness = batched_result.recorder.per_update_staleness()
        assert len(staleness) == 12
        assert all(value >= 0 for value in staleness)

    def test_entries_match_install_minus_delivery(self, sweep_result):
        recorder = sweep_result.recorder
        staleness = recorder.per_update_staleness()
        expected = [
            attribution.snapshot.time - notice.delivered_at
            for attribution in recorder.attribute_installs()
            for notice in attribution.members
        ]
        assert staleness == pytest.approx(sorted_by_delivery(recorder, expected))

    def test_result_exposes_mean(self, batched_result):
        mean = batched_result.mean_per_update_staleness
        staleness = batched_result.recorder.per_update_staleness()
        assert mean == pytest.approx(sum(staleness) / len(staleness))
        assert "per-update stale" in batched_result.report()


def sorted_by_delivery(recorder, values):
    order = [
        notice.delivery_seq
        for attribution in recorder.attribute_installs()
        for notice in attribution.members
    ]
    return [value for _, value in sorted(zip(order, values))]


# ---------------------------------------------------------------------------
# Negative: malformed or dishonest snapshot logs are caught
# ---------------------------------------------------------------------------

def fresh_recorder():
    """A recorder from a fresh correct run, safe to mutate."""
    return run_experiment(
        ExperimentConfig(algorithm="sweep", **WORKLOAD)
    ).recorder


class TestCatchesBrokenAccounting:
    def test_dropped_install_leaves_updates_unattributed(self):
        recorder = fresh_recorder()
        recorder.snapshots.snapshots.pop()
        verdict = recorder.check_batched()
        assert not verdict.ok
        assert "never attributed" in verdict.detail

    def test_regressing_vector_is_rejected(self):
        recorder = fresh_recorder()
        snaps = recorder.snapshots.snapshots
        snaps[-1].claimed_vector = dict(snaps[0].claimed_vector)
        with pytest.raises(ValueError, match="regresses"):
            recorder.attribute_installs()
        assert not recorder.check_batched().ok

    def test_overclaiming_vector_is_rejected(self):
        recorder = fresh_recorder()
        snaps = recorder.snapshots.snapshots
        index, count = next(iter(snaps[-1].claimed_vector.items()))
        snaps[-1].claimed_vector[index] = count + 50
        with pytest.raises(ValueError, match="only"):
            recorder.attribute_installs()

    def test_missing_vector_is_rejected(self):
        recorder = fresh_recorder()
        recorder.snapshots.snapshots[3].claimed_vector = None
        with pytest.raises(ValueError, match="claims no state vector"):
            recorder.attribute_installs()

    def test_non_prefix_batch_is_flagged(self):
        """An install claiming a later source's update before an earlier
        delivered one breaks the delivery-order prefix property."""
        recorder = fresh_recorder()
        deliveries = recorder.deliveries
        snaps = recorder.snapshots.snapshots
        # find consecutive deliveries from two different sources
        t = next(
            i for i in range(len(deliveries) - 1)
            if deliveries[i].source_index != deliveries[i + 1].source_index
        )
        # install t+1 claims delivery t+2's update instead of t+1's own
        tampered = dict(snaps[t].claimed_vector)
        tampered[deliveries[t].source_index] -= 1
        tampered[deliveries[t + 1].source_index] = (
            tampered.get(deliveries[t + 1].source_index, 0) + 1
        )
        snaps[t].claimed_vector = {k: v for k, v in tampered.items() if v}
        verdict = recorder.check_batched()
        assert not verdict.ok
        assert "not a delivery-order prefix" in verdict.detail

    def test_wrong_install_content_is_flagged(self):
        """A batch whose boundaries are honest but whose view is stale."""
        recorder = fresh_recorder()
        snaps = recorder.snapshots.snapshots
        t = next(  # pick an install whose view actually changed
            i for i in range(1, len(snaps)) if snaps[i].view != snaps[i - 1].view
        )
        snaps[t].view = snaps[t - 1].view  # show the predecessor's state
        verdict = recorder.check_batched()
        assert not verdict.ok
        assert "does not match delivery prefix" in verdict.detail

    def test_staleness_unavailable_on_malformed_claims(self):
        """The RunResult surface degrades to None instead of raising."""
        result = run_experiment(ExperimentConfig(algorithm="sweep", **WORKLOAD))
        result.recorder.snapshots.snapshots[0].claimed_vector = None
        assert result.mean_per_update_staleness is None


# ---------------------------------------------------------------------------
# Mutation check: broken *batch* compensation must not slip past the oracle
# ---------------------------------------------------------------------------

class BrokenCompensationBatchedSweep(BatchedSweepWarehouse):
    """The batched-SWEEP bug the oracle exists to catch: answers routed
    while later updates sat in the queue are used as-is, so every
    mid-round-trip update's error term leaks into the composite install."""

    algorithm_name = "buggy-batched-compensation"

    def _compensate_queued(self, index, answer, temp):
        return answer


#: Fast arrivals against slow sources: updates reliably land while a
#: wave's query is in flight, so skipped compensation has visible effect.
#: (Guarded by ``test_workload_exercises_compensation`` below.)
RACY_WORKLOAD = dict(
    n_sources=3, n_updates=30, mean_interarrival=0.5,
    latency=10.0, latency_model="uniform", match_fraction=1.0,
    insert_fraction=0.5, rows_per_relation=10, batch_max=2,
    check_consistency=True,
)

#: Seeds where the leaked error terms do not cancel in the composite sum.
DETECTING_SEEDS = (2, 4)


class TestBrokenCompensationCaught:
    @pytest.fixture
    def register_broken(self, monkeypatch):
        info = AlgorithmInfo(
            name=BrokenCompensationBatchedSweep.algorithm_name,
            cls=BrokenCompensationBatchedSweep,
            architecture="distributed",
            claimed_consistency=ConsistencyLevel.STRONG,
            message_cost="O(n)",
            requires_keys=False,
            requires_quiescence=False,
            comments="deliberately broken (test only)",
            in_paper_table=False,
        )
        monkeypatch.setitem(ALGORITHMS, info.name, info)
        return info.name

    @pytest.mark.parametrize("seed", DETECTING_SEEDS)
    def test_workload_exercises_compensation(self, seed):
        """Guard against vacuity: on these runs the *correct* scheduler
        must actually compensate -- otherwise the mutation is a no-op."""
        result = run_experiment(
            ExperimentConfig(algorithm="batched-sweep", seed=seed, **RACY_WORKLOAD)
        )
        assert result.metrics.counters.get("compensations", 0) > 0

    @pytest.mark.parametrize("seed", DETECTING_SEEDS)
    def test_broken_compensation_detected(self, register_broken, seed):
        result = run_experiment(
            ExperimentConfig(algorithm=register_broken, seed=seed, **RACY_WORKLOAD)
        )
        assert result.classified_level < ConsistencyLevel.STRONG
        verdict = result.recorder.check_batched()
        assert not verdict.ok
        assert "does not match delivery prefix" in verdict.detail

    @pytest.mark.parametrize("seed", DETECTING_SEEDS)
    def test_correct_batched_sweep_passes_same_gauntlet(self, seed):
        result = run_experiment(
            ExperimentConfig(algorithm="batched-sweep", seed=seed, **RACY_WORKLOAD)
        )
        assert result.classified_level >= ConsistencyLevel.STRONG
        assert result.recorder.check_batched().ok


def test_checker_functions_importable_from_package():
    from repro.consistency import (  # noqa: F401
        InstallAttribution,
        attribute_installs as _a,
        check_batched_complete as _c,
    )

    assert attribute_installs is _a
    assert check_batched_complete is _c
