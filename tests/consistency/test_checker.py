"""Unit tests for the consistency oracle on hand-built histories."""

import pytest

from repro.consistency.checker import (
    check_complete,
    check_convergence,
    check_strong,
    check_weak,
    classify,
    evaluate_at,
    vector_for_delivery_prefix,
)
from repro.consistency.history import SourceHistory
from repro.consistency.levels import ConsistencyLevel
from repro.consistency.oracle import RunRecorder
from repro.consistency.snapshots import SnapshotLog
from repro.relational.delta import Delta
from repro.relational.relation import Relation
from repro.sources.messages import UpdateNotice

from tests.conftest import R1_SCHEMA, R2_SCHEMA, R3_SCHEMA


def build_history(paper_states):
    """The paper's three updates, recorded in a SourceHistory."""
    h = SourceHistory()
    h.register_source(1, "R1", paper_states["R1"])
    h.register_source(2, "R2", paper_states["R2"])
    h.register_source(3, "R3", paper_states["R3"])
    notices = [
        UpdateNotice(2, 1, Delta.insert(R2_SCHEMA, (3, 5))),
        UpdateNotice(3, 1, Delta.delete(R3_SCHEMA, (7, 8))),
        UpdateNotice(1, 1, Delta.delete(R1_SCHEMA, (2, 3))),
    ]
    for n in notices:
        h.on_source_update(n)
    return h, notices


class TestSourceHistory:
    def test_state_reconstruction(self, paper_states):
        h, _ = build_history(paper_states)
        assert h.state_at(2, 0) == paper_states["R2"]
        assert h.state_at(2, 1).count((3, 5)) == 1
        assert h.n_updates(2) == 1

    def test_state_bounds(self, paper_states):
        h, _ = build_history(paper_states)
        with pytest.raises(ValueError):
            h.state_at(2, 2)
        with pytest.raises(ValueError):
            h.state_at(2, -1)

    def test_duplicate_registration(self, paper_states):
        h, _ = build_history(paper_states)
        with pytest.raises(ValueError):
            h.register_source(1, "R1", paper_states["R1"])

    def test_out_of_order_seq_rejected(self, paper_states):
        h, _ = build_history(paper_states)
        with pytest.raises(ValueError):
            h.on_source_update(UpdateNotice(2, 5, Delta.insert(R2_SCHEMA, (9, 9))))

    def test_unregistered_source_rejected(self):
        h = SourceHistory()
        with pytest.raises(ValueError):
            h.on_source_update(UpdateNotice(9, 1, Delta.insert(R1_SCHEMA, (1, 1))))

    def test_final_vector_and_space(self, paper_states):
        h, _ = build_history(paper_states)
        assert h.final_vector() == {1: 1, 2: 1, 3: 1}
        assert h.vector_space_size() == 8

    def test_states_at_vector(self, paper_states):
        h, _ = build_history(paper_states)
        states = h.states_at_vector({1: 0, 2: 1, 3: 0})
        assert states["R2"].count((3, 5)) == 1
        assert states["R3"].count((7, 8)) == 1


class TestVectorHelpers:
    def test_delivery_prefix(self, paper_states):
        _, notices = build_history(paper_states)
        assert vector_for_delivery_prefix(notices, 0) == {}
        assert vector_for_delivery_prefix(notices, 2) == {2: 1, 3: 1}
        assert vector_for_delivery_prefix(notices, 3) == {1: 1, 2: 1, 3: 1}

    def test_prefix_bounds(self, paper_states):
        _, notices = build_history(paper_states)
        with pytest.raises(ValueError):
            vector_for_delivery_prefix(notices, 4)

    def test_evaluate_at(self, paper_view, paper_states):
        h, _ = build_history(paper_states)
        view_now = evaluate_at(paper_view, h, {})
        assert view_now.count((7, 8)) == 2
        final = evaluate_at(paper_view, h, h.final_vector())
        assert final.count((5, 6)) == 1


def _figure5_snapshot_log(paper_view, history, notices):
    """Snapshots exactly matching the delivery prefixes (Figure 5)."""
    log = SnapshotLog()
    log.set_initial(evaluate_at(paper_view, history, {}))
    for t in range(1, len(notices) + 1):
        vec = vector_for_delivery_prefix(notices, t)
        log.record(float(t), evaluate_at(paper_view, history, vec), vec)
    return log


class TestChecks:
    def test_complete_trajectory_passes_everything(self, paper_view, paper_states):
        h, notices = build_history(paper_states)
        log = _figure5_snapshot_log(paper_view, h, notices)
        assert check_convergence(paper_view, h, log)
        assert check_weak(paper_view, h, log)
        assert check_strong(paper_view, h, log)
        assert check_complete(paper_view, h, notices, log)
        assert classify(paper_view, h, notices, log) == ConsistencyLevel.COMPLETE

    def test_single_final_install_is_strong_not_complete(
        self, paper_view, paper_states
    ):
        h, notices = build_history(paper_states)
        log = SnapshotLog()
        log.set_initial(evaluate_at(paper_view, h, {}))
        log.record(9.0, evaluate_at(paper_view, h, h.final_vector()))
        assert check_convergence(paper_view, h, log)
        assert not check_complete(paper_view, h, notices, log)
        assert check_strong(paper_view, h, log)
        assert classify(paper_view, h, notices, log) == ConsistencyLevel.STRONG

    def test_garbage_state_fails_weak(self, paper_view, paper_states):
        h, notices = build_history(paper_states)
        log = SnapshotLog()
        log.set_initial(evaluate_at(paper_view, h, {}))
        garbage = Relation(paper_view.view_schema, {(99, 99): 1})
        log.record(1.0, garbage)
        log.record(2.0, evaluate_at(paper_view, h, h.final_vector()))
        log.record(3.0, evaluate_at(paper_view, h, h.final_vector()))
        res = check_weak(paper_view, h, log)
        assert not res
        assert "install #1" in res.detail
        assert classify(paper_view, h, notices, log) == ConsistencyLevel.CONVERGENCE

    def test_time_travel_fails_strong_but_not_weak(self, paper_view, paper_states):
        """States that individually match vectors but regress in time."""
        h, notices = build_history(paper_states)
        after_all = evaluate_at(paper_view, h, h.final_vector())
        only_r2 = evaluate_at(paper_view, h, {2: 1})
        log = SnapshotLog()
        log.set_initial(evaluate_at(paper_view, h, {}))
        log.record(1.0, after_all)
        log.record(2.0, only_r2)  # regression: R1/R3 updates vanished
        log.record(3.0, after_all)
        assert check_weak(paper_view, h, log)
        res = check_strong(paper_view, h, log)
        assert not res
        assert classify(paper_view, h, notices, log) == ConsistencyLevel.WEAK

    def test_wrong_final_state_fails_convergence(self, paper_view, paper_states):
        h, notices = build_history(paper_states)
        log = SnapshotLog()
        log.set_initial(evaluate_at(paper_view, h, {}))
        log.record(1.0, evaluate_at(paper_view, h, {2: 1}))
        assert not check_convergence(paper_view, h, log)
        assert classify(paper_view, h, notices, log) == ConsistencyLevel.NONE

    def test_overdelivered_source_is_dishonest_not_a_crash(
        self, paper_view, paper_states
    ):
        """More deliveries from a source than its history holds -> NONE.

        A duplicate that crossed the FIFO fence (an unfenced standby
        takeover) can push a source's delivery count past its update
        log; the oracle must judge that log dishonest, not blow up
        evaluating an unrepresentable state vector.
        """
        h, notices = build_history(paper_states)
        log = _figure5_snapshot_log(paper_view, h, notices)
        replayed = notices + [notices[-1]]  # R1's only update, twice
        log.record(
            4.0, evaluate_at(paper_view, h, h.final_vector()),
            h.final_vector(),
        )
        level = classify(paper_view, h, replayed, log)
        assert level == ConsistencyLevel.NONE

    def test_no_snapshots_at_all(self, paper_view, paper_states):
        h, notices = build_history(paper_states)
        log = SnapshotLog()
        res = check_convergence(paper_view, h, log)
        assert not res and "no view state" in res.detail

    def test_complete_requires_one_install_per_delivery(
        self, paper_view, paper_states
    ):
        h, notices = build_history(paper_states)
        log = _figure5_snapshot_log(paper_view, h, notices)
        log.record(99.0, log.snapshots[-1].view)  # extra install
        res = check_complete(paper_view, h, notices, log)
        assert not res and "4 installs" in res.detail

    def test_complete_order_matters(self, paper_view, paper_states):
        h, notices = build_history(paper_states)
        log = _figure5_snapshot_log(paper_view, h, notices)
        log.snapshots[0], log.snapshots[1] = log.snapshots[1], log.snapshots[0]
        assert not check_complete(paper_view, h, notices, log)


class TestInstrumentedFallback:
    def test_claimed_vectors_validated_when_space_large(
        self, paper_view, paper_states
    ):
        h, notices = build_history(paper_states)
        log = SnapshotLog()
        log.set_initial(evaluate_at(paper_view, h, {}))
        vec = {1: 0, 2: 1, 3: 0}
        log.record(1.0, evaluate_at(paper_view, h, vec), claimed_vector=vec)
        res = check_weak(paper_view, h, log, max_vectors=1)
        assert res.ok and res.method == "instrumented"

    def test_missing_claim_fails_instrumented(self, paper_view, paper_states):
        h, _ = build_history(paper_states)
        log = SnapshotLog()
        log.record(1.0, evaluate_at(paper_view, h, {}))
        res = check_weak(paper_view, h, log, max_vectors=1)
        assert not res.ok and "claims no vector" in res.detail

    def test_false_claim_fails_instrumented(self, paper_view, paper_states):
        h, _ = build_history(paper_states)
        log = SnapshotLog()
        log.record(
            1.0, evaluate_at(paper_view, h, {}), claimed_vector={1: 1, 2: 1, 3: 1}
        )
        res = check_weak(paper_view, h, log, max_vectors=1)
        assert not res.ok

    def test_regressing_claims_fail_strong_instrumented(
        self, paper_view, paper_states
    ):
        h, _ = build_history(paper_states)
        log = SnapshotLog()
        v1 = {1: 0, 2: 1, 3: 0}
        log.record(1.0, evaluate_at(paper_view, h, v1), claimed_vector=v1)
        v0 = {1: 0, 2: 0, 3: 0}
        log.record(2.0, evaluate_at(paper_view, h, v0), claimed_vector=v0)
        res = check_strong(paper_view, h, log, max_vectors=1)
        assert not res.ok and "regresses" in res.detail


class TestRunRecorder:
    def test_delivery_stamping(self, paper_view, paper_states):
        rec = RunRecorder(paper_view)
        rec.register_source(1, "R1", paper_states["R1"])
        n = UpdateNotice(1, 1, Delta.delete(R1_SCHEMA, (2, 3)))
        rec.on_source_update(n)
        rec.on_delivery(n)
        assert n.delivery_seq == 1
        assert rec.updates_delivered == 1

    def test_check_dispatch(self, paper_view, paper_states):
        rec = RunRecorder(paper_view)
        for idx, name in ((1, "R1"), (2, "R2"), (3, "R3")):
            rec.register_source(idx, name, paper_states[name])
        rec.set_initial_view(paper_view.evaluate(paper_states))
        # no updates: trivially converged
        assert rec.check(ConsistencyLevel.CONVERGENCE).ok
        # zero deliveries, zero installs
        assert rec.classify() == ConsistencyLevel.COMPLETE
        with pytest.raises(ValueError):
            rec.check(ConsistencyLevel.NONE)

    def test_view_as_of(self, paper_view, paper_states):
        log = SnapshotLog()
        initial = paper_view.evaluate(paper_states)
        log.set_initial(initial)
        later = Relation(paper_view.view_schema, {(5, 6): 1})
        log.record(10.0, later)
        assert log.view_as_of(5.0) == initial
        assert log.view_as_of(10.0) == later
        assert log.view_as_of(99.0) == later
        assert SnapshotLog().view_as_of(1.0) is None

    def test_snapshot_log_helpers(self, paper_view, paper_states):
        log = SnapshotLog()
        initial = paper_view.evaluate(paper_states)
        log.set_initial(initial)
        assert log.final_view == initial
        log.record(1.0, initial)  # unchanged state
        changed = Relation(paper_view.view_schema, {(5, 6): 1})
        log.record(2.0, changed)
        assert log.distinct_states() == 1
        assert len(log) == 2
        assert list(log)[1].view == changed
