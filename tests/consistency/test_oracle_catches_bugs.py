"""Negative testing: the oracle must *catch* deliberately broken algorithms.

A verification layer is only trustworthy if it fails when it should.
These tests inject classic maintenance bugs into SWEEP and assert the
independent checkers flag them (or the strict view store refuses the
corrupted delta outright).
"""

import pytest

from repro.consistency.levels import ConsistencyLevel
from repro.harness.config import ExperimentConfig
from repro.harness.runner import run_experiment
from repro.relational.errors import NegativeCountError
from repro.warehouse.registry import ALGORITHMS, AlgorithmInfo
from repro.warehouse.sweep import SweepWarehouse

HOSTILE = dict(
    seed=3, n_sources=4, n_updates=25, mean_interarrival=1.0,
    latency=8.0, latency_model="uniform", match_fraction=1.0,
    insert_fraction=0.5, rows_per_relation=10,
)


class NoCompensationSweep(SweepWarehouse):
    """Bug #1: skip local error correction entirely."""

    algorithm_name = "buggy-no-compensation"

    def _compensate(self, index, answer, temp):
        return answer


class DoubleCompensationSweep(SweepWarehouse):
    """Bug #2: subtract every error term twice."""

    algorithm_name = "buggy-double-compensation"

    def _compensate(self, index, answer, temp):
        once = super()._compensate(index, answer, temp)
        return super()._compensate(index, once, temp)


class SkipInstallSweep(SweepWarehouse):
    """Bug #3: silently drop every third view change."""

    algorithm_name = "buggy-skip-install"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._counter = 0

    def install_wide(self, wide_delta, note=""):
        self._counter += 1
        if self._counter % 3 == 0:
            # pretend to install: record a snapshot of the unchanged view
            self._after_install(note + " [dropped]")
            return
        super().install_wide(wide_delta, note)


@pytest.fixture
def register(monkeypatch):
    """Temporarily register a buggy algorithm class."""

    def _register(cls):
        info = AlgorithmInfo(
            name=cls.algorithm_name,
            cls=cls,
            architecture="distributed",
            claimed_consistency=ConsistencyLevel.COMPLETE,
            message_cost="O(n)",
            requires_keys=False,
            requires_quiescence=False,
            comments="deliberately broken (test only)",
            in_paper_table=False,
        )
        monkeypatch.setitem(ALGORITHMS, cls.algorithm_name, info)
        return info

    return _register


def run_buggy(cls, register, strict=True):
    register(cls)
    return run_experiment(
        ExperimentConfig(algorithm=cls.algorithm_name, **HOSTILE)
    )


class TestOracleCatchesBugs:
    def test_missing_compensation_detected(self, register):
        """Without compensation, error terms corrupt the view: either the
        strict store refuses an impossible delete, or the oracle refuses to
        certify complete consistency."""
        try:
            result = run_buggy(NoCompensationSweep, register)
        except NegativeCountError:
            return  # the strict view store caught the corruption first
        assert result.classified_level != ConsistencyLevel.COMPLETE

    def test_double_compensation_detected(self, register):
        try:
            result = run_buggy(DoubleCompensationSweep, register)
        except NegativeCountError:
            return
        assert result.classified_level != ConsistencyLevel.COMPLETE

    def test_dropped_installs_detected(self, register):
        try:
            result = run_buggy(SkipInstallSweep, register)
        except NegativeCountError:
            return
        # dropped view changes either break convergence or complete order
        assert result.classified_level != ConsistencyLevel.COMPLETE

    def test_correct_sweep_passes_same_gauntlet(self):
        """Control: real SWEEP on the identical workload is COMPLETE."""
        result = run_experiment(ExperimentConfig(algorithm="sweep", **HOSTILE))
        assert result.classified_level == ConsistencyLevel.COMPLETE
