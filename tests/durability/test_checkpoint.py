"""Checkpoint file contract: atomic round trip, CRC, newest-wins policy.

The damage policy (see :meth:`ViewCheckpoint.load_latest`): a corrupt
*newest* checkpoint raises instead of silently falling back to an older
generation -- the newer WAL would then be unreplayable and the served
view silently stale.
"""

import json

import pytest

from repro.durability import (
    CheckpointCorruptionError,
    ViewCheckpoint,
)
from repro.durability.checkpoint import checkpoint_generations, checkpoint_path
from repro.durability.encoding import decode_relation, encode_bag, encode_notice
from repro.relational.delta import Delta
from repro.relational.relation import Relation
from repro.sources.messages import UpdateNotice


def _checkpoint(paper_view, generation: int = 2) -> ViewCheckpoint:
    view_rows = Relation(paper_view.view_schema, {(1, 2): 1, (3, 4): 2})
    delta = Delta(paper_view.schema_of(1))
    delta.add((5, 6), +1)
    notice = UpdateNotice(source_index=1, seq=4, delta=delta)
    return ViewCheckpoint(
        generation=generation,
        applied_counts={1: 3, 2: 1},
        delivered_marks={1: 4, 2: 1},
        views={"V": encode_bag(view_rows)},
        pending=[encode_notice(notice)],
        installs=7,
        request_watermark=19,
        written_at=42.5,
    )


def test_write_load_round_trip(tmp_path, paper_view):
    original = _checkpoint(paper_view)
    path = original.write(str(tmp_path))
    assert path == checkpoint_path(str(tmp_path), 2)
    loaded = ViewCheckpoint.load(path)
    assert loaded == original
    back = decode_relation(loaded.views["V"], paper_view.view_schema)
    assert dict(back.items()) == {(1, 2): 1, (3, 4): 2}


def test_load_latest_picks_newest(tmp_path, paper_view):
    _checkpoint(paper_view, generation=1).write(str(tmp_path))
    _checkpoint(paper_view, generation=5).write(str(tmp_path))
    assert checkpoint_generations(str(tmp_path)) == [1, 5]
    generation, checkpoint = ViewCheckpoint.load_latest(str(tmp_path))
    assert generation == 5
    assert checkpoint.generation == 5


def test_load_latest_empty_directory(tmp_path):
    assert ViewCheckpoint.load_latest(str(tmp_path)) is None


def test_corrupt_newest_raises_not_falls_back(tmp_path, paper_view):
    _checkpoint(paper_view, generation=1).write(str(tmp_path))
    newest = _checkpoint(paper_view, generation=3).write(
        str(tmp_path), binary=False
    )
    envelope = json.loads(open(newest, encoding="utf-8").read())
    envelope["body"]["installs"] += 1  # body no longer matches the CRC
    with open(newest, "w", encoding="utf-8") as handle:
        json.dump(envelope, handle)
    with pytest.raises(CheckpointCorruptionError, match="fails CRC"):
        ViewCheckpoint.load_latest(str(tmp_path))


def test_corrupt_newest_binary_raises_not_falls_back(tmp_path, paper_view):
    from repro.runtime import binwire

    _checkpoint(paper_view, generation=1).write(str(tmp_path))
    newest = _checkpoint(paper_view, generation=3).write(str(tmp_path))
    envelope = binwire.loads(open(newest, "rb").read())
    body = binwire.loads(envelope["body"])
    body["installs"] += 1  # body no longer matches the CRC
    envelope["body"] = binwire.dumps(body)
    with open(newest, "wb") as handle:
        handle.write(binwire.dumps(envelope))
    with pytest.raises(CheckpointCorruptionError, match="fails CRC"):
        ViewCheckpoint.load_latest(str(tmp_path))


def test_unsupported_format_raises(tmp_path, paper_view):
    path = _checkpoint(paper_view).write(str(tmp_path), binary=False)
    envelope = json.loads(open(path, encoding="utf-8").read())
    envelope["format"] = 99
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(envelope, handle)
    with pytest.raises(CheckpointCorruptionError, match="format"):
        ViewCheckpoint.load(path)


def test_stale_tmp_file_is_ignored(tmp_path, paper_view):
    """A crash between tmp-write and rename leaves only garbage aside."""
    _checkpoint(paper_view, generation=2).write(str(tmp_path))
    stray = checkpoint_path(str(tmp_path), 3) + ".tmp"
    with open(stray, "w", encoding="utf-8") as handle:
        handle.write("{half a checkpoi")
    assert checkpoint_generations(str(tmp_path)) == [2]
    generation, _ = ViewCheckpoint.load_latest(str(tmp_path))
    assert generation == 2
