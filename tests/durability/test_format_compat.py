"""Durable-format compatibility: JSON-era directories recover unchanged.

The binary kernel changed what new checkpoints and WAL frames look like
on disk, not what they mean: a directory written entirely by the JSON
formats (checkpoint envelope format 1, WAL format 1), one written by the
binary formats, and a mixed directory left behind by an upgrade must all
load to the same recovered state.
"""

import json

import pytest

from repro.durability import UpdateLog, load_state
from repro.durability.checkpoint import ViewCheckpoint, checkpoint_path
from repro.durability.wal import WAL_FORMAT, WAL_FORMAT_BINARY, read_update_log
from repro.relational.delta import Delta
from repro.sources.messages import UpdateNotice
from tests.durability.test_checkpoint import _checkpoint


def _notice(seq: int, paper_view, source: int = 1) -> UpdateNotice:
    delta = Delta(paper_view.schema_of(source))
    delta.add((seq, seq + 1), +1)
    return UpdateNotice(source_index=source, seq=seq, delta=delta)


def _populate(directory: str, paper_view, binary: bool) -> None:
    _checkpoint(paper_view, generation=2).write(directory, binary=binary)
    log = UpdateLog(directory, generation=2, binary=binary)
    log.append_notice(_notice(5, paper_view))
    log.append_notice(_notice(2, paper_view, source=2))
    log.close()


def _fingerprint(state) -> tuple:
    return (
        state.generation,
        [(n.source_index, n.seq) for n in state.pending],
        dict(state.delivered_marks),
        dict(state.applied_counts),
        state.wal_records,
        state.request_watermark,
    )


def test_json_and_binary_directories_recover_identically(tmp_path, paper_view):
    json_dir, bin_dir = str(tmp_path / "json"), str(tmp_path / "bin")
    for directory, binary in ((json_dir, False), (bin_dir, True)):
        (tmp_path / ("bin" if binary else "json")).mkdir()
        _populate(directory, paper_view, binary)
    json_state = load_state(json_dir, [paper_view])
    bin_state = load_state(bin_dir, [paper_view])
    assert _fingerprint(json_state) == _fingerprint(bin_state)
    assert json_state.view_states["V"] == bin_state.view_states["V"]


def test_json_era_artifacts_really_are_json(tmp_path, paper_view):
    """Guard the *legacy* writer: ``binary=False`` must keep emitting the
    v2 on-disk formats an old reader understands, byte-level."""
    _populate(str(tmp_path), paper_view, binary=False)
    envelope = json.loads(
        open(checkpoint_path(str(tmp_path), 2), encoding="utf-8").read()
    )
    assert envelope["format"] == 1
    generation, records, torn = read_update_log(
        str(tmp_path / "update-00000002.wal")
    )
    assert (generation, len(records), torn) == (2, 2, 0)
    header = open(str(tmp_path / "update-00000002.wal"), "rb").read()
    assert b'"wal"' in header  # JSON header frame, not binwire


def test_upgraded_directory_mixes_formats_and_recovers(tmp_path, paper_view):
    """A JSON-era directory a binary-writing node checkpoints into: the
    newest (binary) generation wins; older JSON artifacts stay readable."""
    _populate(str(tmp_path), paper_view, binary=False)
    _checkpoint(paper_view, generation=4).write(str(tmp_path), binary=True)
    log = UpdateLog(str(tmp_path), generation=4, binary=True)
    log.append_notice(_notice(6, paper_view))
    log.close()
    state = load_state(str(tmp_path), [paper_view])
    assert state.generation == 4
    assert [(n.source_index, n.seq) for n in state.pending] == [(1, 4), (1, 6)]
    # The superseded JSON checkpoint is still individually loadable.
    old = ViewCheckpoint.load(checkpoint_path(str(tmp_path), 2))
    assert old.generation == 2


@pytest.mark.parametrize("binary", [False, True], ids=["json", "binary"])
def test_wal_header_format_matches_writer(tmp_path, paper_view, binary):
    log = UpdateLog(str(tmp_path), generation=1, binary=binary)
    log.append_notice(_notice(1, paper_view))
    log.close()
    generation, records, _ = read_update_log(str(tmp_path / "update-00000001.wal"))
    assert generation == 1 and len(records) == 1
    import struct
    import zlib  # noqa: F401  (frame layout doc)

    data = open(str(tmp_path / "update-00000001.wal"), "rb").read()
    length, _crc = struct.unpack_from("!II", data, 0)
    header = json.loads(data[8 : 8 + length]) if not binary else None
    if binary:
        from repro.runtime import binwire

        header = binwire.loads(data[8 : 8 + length])
        assert header["wal"] == WAL_FORMAT_BINARY
    else:
        assert header["wal"] == WAL_FORMAT
