"""Recovery contract: load_state damage policy + crash-restart integration.

The integration cases re-run seeds from the 30-seed acceptance sweep
that historically regressed: seed 3 (batched scheduler, install-count
crash) is the case whose recovered pending updates must stay *parked*
until the restarted sources' positions cover them -- eager replay made
its compensation subtract deltas the source answers never contained.
"""

import pytest

from repro.durability import (
    GenerationMismatchError,
    RecoveryError,
    UpdateLog,
    load_state,
)
from repro.durability.encoding import encode_bag
from repro.relational.delta import Delta
from repro.relational.relation import Relation
from repro.sources.messages import UpdateNotice
from tests.durability.test_checkpoint import _checkpoint


def _notice(seq: int, paper_view, source: int = 1) -> UpdateNotice:
    delta = Delta(paper_view.schema_of(source))
    delta.add((seq, seq + 1), +1)
    return UpdateNotice(source_index=source, seq=seq, delta=delta)


def test_fresh_directory_is_none(tmp_path, paper_view):
    assert load_state(str(tmp_path), [paper_view]) is None
    assert load_state(str(tmp_path / "never-created"), [paper_view]) is None


def test_wal_without_checkpoint_raises(tmp_path, paper_view):
    log = UpdateLog(str(tmp_path), generation=0)
    log.append_notice(_notice(1, paper_view))
    log.close()
    with pytest.raises(RecoveryError, match="no checkpoint"):
        load_state(str(tmp_path), [paper_view])


def test_wal_newer_than_checkpoint_raises(tmp_path, paper_view):
    _checkpoint(paper_view, generation=2).write(str(tmp_path))
    log = UpdateLog(str(tmp_path), generation=4)
    log.append_notice(_notice(5, paper_view))
    log.close()
    with pytest.raises(GenerationMismatchError, match="newer than"):
        load_state(str(tmp_path), [paper_view])


def test_view_set_mismatch_raises(tmp_path, paper_view):
    checkpoint = _checkpoint(paper_view)
    extra = Relation(paper_view.view_schema, {(9, 9): 1})
    checkpoint.views["V-unknown"] = encode_bag(extra)
    checkpoint.write(str(tmp_path))
    with pytest.raises(RecoveryError, match="do not match configured"):
        load_state(str(tmp_path), [paper_view])


def test_pending_merges_checkpoint_then_wal(tmp_path, paper_view):
    checkpoint = _checkpoint(paper_view, generation=2)
    # The fixture checkpoint already parks src1 seq 4; the matching WAL
    # holds the two deliveries after the stable point.
    checkpoint.write(str(tmp_path))
    log = UpdateLog(str(tmp_path), generation=2)
    log.append_notice(_notice(5, paper_view))
    log.append_notice(_notice(2, paper_view, source=2))
    log.close()
    state = load_state(str(tmp_path), [paper_view])
    assert [(n.source_index, n.seq) for n in state.pending] == [
        (1, 4), (1, 5), (2, 2),
    ]
    # Delivered marks extend past the checkpoint's to cover the WAL.
    assert state.delivered_marks == {1: 5, 2: 2}
    assert state.wal_records == 2
    assert state.request_watermark == 19


def test_applied_beyond_delivered_raises(tmp_path, paper_view):
    checkpoint = _checkpoint(paper_view)
    checkpoint.applied_counts[2] = 9  # claims installs never delivered
    checkpoint.write(str(tmp_path))
    with pytest.raises(RecoveryError, match="only 1 delivered"):
        load_state(str(tmp_path), [paper_view])


# ---------------------------------------------------------------------------
# Crash-restart integration (in-process sharded runtime)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize(
    "algorithm,seed",
    [
        ("batched-sweep", 3),  # the parked-release regression seed
        ("sweep", 4),
    ],
)
def test_crash_restart_case_recovers(algorithm, seed):
    from repro.harness.recovery import run_crash_restart_case

    row = run_crash_restart_case(algorithm, seed, transport="local")
    assert row["error"] == ""
    assert row["ok"], row
    assert row["crash_fired"]
    assert row["views_equal"]
    assert row["recovered_pending"] > 0
