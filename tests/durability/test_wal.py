"""WAL unit contract: round trip, torn tails, scrambled frames.

The damage policy under test (see :mod:`repro.durability.wal`): a torn
tail is an expected crash artifact and is dropped (and repaired away);
a complete frame with a bad CRC is corruption and must fail loudly --
recovery never replays a damaged update into the view.
"""

import os
import struct

import pytest

from repro.durability import UpdateLog, WalCorruptionError, read_update_log
from repro.durability.encoding import decode_notice, encode_notice
from repro.durability.wal import wal_generations, wal_path
from repro.relational.delta import Delta
from repro.relational.schema import Schema
from repro.sources.messages import UpdateNotice


def _notice(seq: int, source: int = 1) -> UpdateNotice:
    delta = Delta(Schema(("A", "B")))
    delta.add((seq, 10 * seq), +1)
    delta.add((seq, 11 * seq), -1 if seq % 2 else +2)
    return UpdateNotice(source_index=source, seq=seq, delta=delta)


def _write_log(directory: str, n: int = 5, generation: int = 3) -> str:
    log = UpdateLog(directory, generation, fsync_batch=2)
    for seq in range(1, n + 1):
        log.append_notice(_notice(seq))
    log.close()
    return log.path


def test_round_trip(tmp_path, paper_view):
    path = _write_log(str(tmp_path))
    generation, records, torn = read_update_log(path)
    assert generation == 3
    assert torn == 0
    assert len(records) == 5
    decoded = [decode_notice(obj, paper_view) for obj in records]
    assert [n.seq for n in decoded] == [1, 2, 3, 4, 5]
    # The delta survives byte-exactly (counts and signs included).
    assert sorted(decoded[2].delta.items()) == sorted(_notice(3).delta.items())


def test_generation_listing(tmp_path):
    _write_log(str(tmp_path), generation=1)
    _write_log(str(tmp_path), generation=4)
    assert wal_generations(str(tmp_path)) == [1, 4]
    assert wal_path(str(tmp_path), 4).endswith("update-00000004.wal")


def test_torn_tail_dropped_and_repaired(tmp_path):
    path = _write_log(str(tmp_path))
    whole = os.path.getsize(path)
    with open(path, "r+b") as handle:
        handle.truncate(whole - 7)  # cut the last frame mid-payload
    generation, records, torn = read_update_log(path, repair=True)
    assert generation == 3
    assert len(records) == 4  # the torn record is gone
    assert torn > 0
    # Repair truncated the file back to the last whole frame: a re-read
    # is clean and an appender could continue without interleaving.
    assert read_update_log(path) == (3, records, 0)


def test_torn_header_means_empty_log(tmp_path):
    path = os.path.join(str(tmp_path), "update-00000000.wal")
    with open(path, "wb") as handle:
        handle.write(b"\x00\x00")  # not even a whole frame header
    generation, records, torn = read_update_log(path)
    assert generation is None
    assert records == []
    assert torn == 2


def test_crc_mismatch_raises(tmp_path):
    path = _write_log(str(tmp_path))
    # Scramble one byte inside the *payload* of the second frame; the
    # frame stays complete, so this is corruption, not a torn write.
    with open(path, "r+b") as handle:
        data = handle.read()
        length, _ = struct.unpack_from("!II", data, 0)
        second = 8 + length  # skip the header frame
        handle.seek(second + 8 + 3)
        handle.write(b"\xff")
    with pytest.raises(WalCorruptionError, match="fails CRC"):
        read_update_log(path)


def test_undecodable_frame_raises(tmp_path):
    import json
    import zlib

    path = os.path.join(str(tmp_path), "update-00000002.wal")
    payload = b"not json at all"
    header = json.dumps({"wal": 1, "generation": 2}).encode()
    with open(path, "wb") as handle:
        for frame in (header, payload):
            handle.write(struct.pack("!II", len(frame), zlib.crc32(frame)))
            handle.write(frame)
    with pytest.raises(WalCorruptionError, match="undecodable"):
        read_update_log(path)


def test_encode_notice_round_trip(paper_view):
    notice = _notice(9, source=2)
    notice.txn_id = "txn-7"
    notice.txn_total = 3
    back = decode_notice(encode_notice(notice), paper_view)
    assert back.source_index == 2
    assert back.seq == 9
    assert back.txn_id == "txn-7"
    assert back.txn_total == 3
    assert sorted(back.delta.items()) == sorted(notice.delta.items())
