"""CLI tests (python -m repro)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.algorithm == "sweep"
        assert args.sources == 3

    def test_run_flags(self):
        args = build_parser().parse_args(
            ["run", "-a", "c-strobe", "-n", "5", "--backend", "sqlite",
             "--no-keys", "--trace"]
        )
        assert args.algorithm == "c-strobe"
        assert args.sources == 5
        assert args.backend == "sqlite"
        assert args.no_keys and args.trace

    def test_run_distributed_defaults(self):
        args = build_parser().parse_args(["run-distributed"])
        assert args.transport == "tcp"
        assert args.time_scale == 0.01
        assert args.host == "127.0.0.1"

    def test_serve_warehouse_flags(self):
        args = build_parser().parse_args(
            ["serve-warehouse", "--listen", "0.0.0.0:9000",
             "--source", "1=127.0.0.1:9001", "--source", "2=127.0.0.1:9002"]
        )
        assert args.listen == "0.0.0.0:9000"
        assert args.source == ["1=127.0.0.1:9001", "2=127.0.0.1:9002"]

    def test_serve_source_requires_index_and_warehouse(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve-source"])
        args = build_parser().parse_args(
            ["serve-source", "-i", "2", "--warehouse", "127.0.0.1:9000"]
        )
        assert args.index == 2 and args.warehouse == "127.0.0.1:9000"


class TestCommands:
    def test_algorithms(self, capsys):
        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        assert "sweep" in out and "c-strobe" in out and "O(n!)" in out

    def test_run_sweep(self, capsys):
        code = main(["run", "-u", "6", "--interarrival", "2", "-s", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "consistency      : complete" in out

    def test_run_show_view_and_trace(self, capsys):
        code = main(["run", "-u", "3", "--trace", "--show-view"])
        assert code == 0
        out = capsys.readouterr().out
        assert "[t=" in out  # trace lines
        assert "K1" in out  # view header

    def test_run_no_check(self, capsys):
        assert main(["run", "-u", "3", "--no-check"]) == 0
        assert "unchecked" in capsys.readouterr().out

    def test_fig5_matches(self, capsys):
        assert main(["fig5"]) == 0
        out = capsys.readouterr().out
        assert "NO" not in out.replace("NO)", "")
        assert "(7, 8)[2]" in out

    def test_table1_small(self, capsys):
        code = main(["table1", "--updates", "6", "--sources", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "sweep" in out and "eca" in out

    def test_unknown_algorithm_raises(self):
        with pytest.raises(KeyError):
            main(["run", "-a", "nonsense", "-u", "0"])

    def test_advise(self, capsys):
        assert main(["advise", "-n", "4", "--rate", "0.05",
                     "--require", "complete"]) == 0
        out = capsys.readouterr().out
        assert "pipelined-sweep" in out
        assert "rho" in out

    def test_advise_global_txns(self, capsys):
        assert main(["advise", "--global-txns"]) == 0
        assert "global-sweep" in capsys.readouterr().out

    def test_run_distributed_local(self, capsys):
        code = main(
            ["run-distributed", "--transport", "local", "-u", "4",
             "--time-scale", "0.001"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "transport        : local" in out
        assert "consistency      : complete" in out

    def test_run_distributed_tcp(self, capsys):
        code = main(
            ["run-distributed", "-u", "4", "--time-scale", "0.001",
             "--show-view"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "transport        : tcp" in out
        assert "K1" in out

    def test_serve_warehouse_without_sources_exits(self):
        with pytest.raises(SystemExit):
            main(["serve-warehouse"])

    def test_experiments_save(self, tmp_path, capsys, monkeypatch):
        import repro.cli as cli

        monkeypatch.setattr(
            cli, "_experiment_sections",
            lambda: [("T1", "stub section", "stub table")],
        )
        path = tmp_path / "sub" / "report.md"
        assert main(["experiments", "--save", str(path)]) == 0
        text = path.read_text()
        assert "## T1 — stub section" in text
        assert "stub table" in text
        assert "report written" in capsys.readouterr().out
