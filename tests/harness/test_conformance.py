"""Conformance harness: case rows, matrix reports, and the CLI surface.

Each case drives a real distributed run, so the suite here keeps the
matrices tiny (one or two algorithms, short streams) and asserts the
*harness* semantics: verdict composition, crash-as-verdict rows, report
shape and round-tripping.  Algorithm-level conformance across the full
registry is what ``python -m repro conformance`` itself is for.
"""

import pytest

from repro.consistency.levels import ConsistencyLevel
from repro.harness.conformance import (
    BATCHING_ALGORITHMS,
    DEFAULT_ALGORITHMS,
    DEFAULT_PROFILES,
    build_report,
    format_report,
    load_report,
    run_case,
    run_matrix,
    write_report,
)
from repro.runtime.chaos import PROFILES
from repro.warehouse.registry import ALGORITHMS, AlgorithmInfo
from repro.warehouse.sweep import SweepWarehouse

FAST = dict(n_updates=8, mean_interarrival=4.0, time_scale=0.001)


def test_defaults_cover_registry_and_profiles():
    assert DEFAULT_ALGORITHMS == tuple(ALGORITHMS)
    assert set(DEFAULT_PROFILES) <= set(PROFILES)
    assert "healthy" in DEFAULT_PROFILES  # always keep the control column
    for name in BATCHING_ALGORITHMS:
        assert name in ALGORITHMS


class TestRunCase:
    def test_healthy_sweep_row(self):
        row = run_case("sweep", "healthy", seed=0, **FAST)
        assert row["ok"], row["error"]
        assert row["algorithm"] == "sweep"
        assert row["profile"] == "healthy"
        assert row["claimed"] == "complete"
        assert row["achieved"] == "complete"
        assert row["updates"] == FAST["n_updates"]
        assert row["faults"] == 0  # healthy profile wraps nothing
        assert row["batched_ok"] is True
        assert row["error"] == ""
        assert row["wall_seconds"] > 0

    def test_chaos_profile_actually_injects(self):
        row = run_case("sweep", "dup", seed=0, **FAST)
        assert row["ok"], row["error"]
        assert row["faults"] > 0

    def test_replicated_sharded_row_keeps_claimed_level(self):
        # Hot standbys are mute on the answer path, so replicas=1 must
        # not move the claimed or achieved level of the sharded case.
        row = run_case("sharded-sweep-r1", "healthy", seed=1, **FAST)
        assert row["ok"], row["error"]
        assert row["claimed"] == "complete"
        assert row["achieved"] == "complete"

    @pytest.mark.parametrize("profile", ["source-stall", "source-burst"])
    def test_source_fault_profiles_inject_and_converge(self, profile):
        """The seeded sender-side faults fire and SWEEP still converges."""
        row = run_case("sweep", profile, seed=1, **FAST)
        assert row["ok"], row["error"]
        assert row["faults"] > 0
        assert row["achieved"] == "complete"

    def test_source_reorder_profile_converges(self):
        # Whether a reorder fires depends on two frames being in flight
        # at once (timing-dependent); deterministic injection is asserted
        # at the channel level in tests/runtime/test_chaos_transport.py.
        row = run_case(
            "sweep", "source-reorder", seed=1,
            n_updates=12, mean_interarrival=1.0, time_scale=0.001,
        )
        assert row["ok"], row["error"]
        assert row["achieved"] == "complete"

    def test_unknown_profile_is_an_error_not_a_row(self):
        with pytest.raises(KeyError, match="unknown chaos profile"):
            run_case("sweep", "no-such-profile")

    def test_unknown_algorithm_is_an_error_not_a_row(self):
        with pytest.raises(KeyError):
            run_case("no-such-algorithm", "healthy")

    def test_crash_is_a_conformance_verdict(self, monkeypatch):
        class ExplodingWarehouse(SweepWarehouse):
            algorithm_name = "exploding"

            def __init__(self, *args, **kwargs):
                raise RuntimeError("boom at startup")

        monkeypatch.setitem(
            ALGORITHMS,
            "exploding",
            AlgorithmInfo(
                name="exploding",
                cls=ExplodingWarehouse,
                architecture="distributed",
                claimed_consistency=ConsistencyLevel.COMPLETE,
                message_cost="O(n)",
                requires_keys=False,
                requires_quiescence=False,
                comments="test only",
                in_paper_table=False,
            ),
        )
        row = run_case("exploding", "healthy", **FAST)
        assert not row["ok"]
        assert "RuntimeError" in row["error"]
        assert row["achieved"] is None  # never got far enough to classify


class TestMatrixAndReport:
    @pytest.fixture(scope="class")
    def report(self):
        return run_matrix(
            algorithms=("sweep",), profiles=("healthy", "dup"), seeds=(0,), **FAST
        )

    def test_matrix_shape_and_verdict(self, report):
        assert report["suite"] == "conformance"
        assert report["transport"] == "local"
        assert report["cases"] == 2
        assert report["failed"] == 0
        assert report["ok"] is True
        assert [r["profile"] for r in report["rows"]] == ["healthy", "dup"]

    def test_progress_callback_sees_every_row(self):
        seen = []
        run_matrix(
            algorithms=("sweep",), profiles=("healthy",), seeds=(0, 1),
            progress=seen.append, **FAST
        )
        assert [(r["algorithm"], r["seed"]) for r in seen] == [
            ("sweep", 0), ("sweep", 1)
        ]

    def test_report_round_trips_through_json(self, report, tmp_path):
        path = write_report(report, tmp_path / "conformance_report.json")
        assert load_report(path) == report

    def test_format_report_renders_verdicts(self, report):
        text = format_report(report)
        assert "Protocol conformance under fault injection" in text
        assert "PASS" in text
        assert "all cases conform" in text

    def test_format_report_surfaces_failures(self):
        rows = [
            {
                "algorithm": "sweep", "profile": "dup", "seed": 0,
                "claimed": "complete", "achieved": "weak", "ok": False,
                "faults": 3, "installs": 2, "mean_staleness": None,
                "batched_ok": None, "error": "achieved weak < claimed",
            }
        ]
        text = format_report(build_report(rows))
        assert "FAIL (achieved weak < claimed)" in text
        assert "1/1 cases FAILED" in text
