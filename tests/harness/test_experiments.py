"""Smoke tests for every experiment module (small, fast parameterizations).

The benchmark suite runs the full-size experiments with shape assertions;
these tests ensure the modules stay importable and structurally sound on
every plain `pytest tests/` run.
"""

from repro.harness.experiments import (
    ablation,
    amortization,
    concurrency,
    fig5,
    messagesize,
    scaling,
    staleness,
    table1,
)


class TestTable1:
    def test_rows_and_rendering(self):
        rows = table1.run_table1(seed=1, n_sources=3, n_updates=6)
        assert [r["algorithm"] for r in rows] == list(table1.TABLE1_ALGORITHMS)
        text = table1.format_table1(rows)
        assert "Table 1" in text and "sweep" in text
        for row in rows:
            assert set(table1.COLUMNS) <= set(row)

    def test_baselines_flag(self):
        rows = table1.run_table1(seed=1, n_sources=2, n_updates=4,
                                 include_baselines=True)
        names = [r["algorithm"] for r in rows]
        assert "convergent" in names and "recompute" in names

    def test_shared_workload_reused(self):
        wl = table1.shared_workload(seed=3, n_sources=3, n_updates=5)
        a = table1.run_one("sweep", wl, seed=3)
        b = table1.run_one("nested-sweep", wl, seed=3)
        assert a.updates_delivered == b.updates_delivered
        assert a.final_view == b.final_view  # same history, same end state


class TestFig5:
    def test_sweep_matches(self):
        rows = fig5.run_fig5(spacing=0.5)
        assert all(r["match"] == "yes" for r in rows)
        assert "Figure 5" in fig5.format_fig5(rows)

    def test_other_algorithm_allowed(self):
        rows = fig5.run_fig5(algorithm="pipelined-sweep", spacing=0.5)
        assert all(r["match"] == "yes" for r in rows)


class TestSweeps:
    def test_scaling_structure(self):
        rows = scaling.run_scaling(sources=(2, 3), algorithms=("sweep",),
                                   n_updates=4)
        assert len(rows) == 2
        assert rows[0]["msgs_per_update"] == 2.0
        assert "S1" in scaling.format_scaling(rows)

    def test_concurrency_structure(self):
        rows = concurrency.run_concurrency(
            interarrivals=(4.0,), algorithms=("sweep",), n_updates=4,
        )
        assert rows[0]["algorithm"] == "sweep"
        assert "S2" in concurrency.format_concurrency(rows)

    def test_staleness_structure(self):
        rows = staleness.run_staleness(
            interarrivals=(5.0,), algorithms=("sweep",), n_updates=4,
        )
        assert rows[0]["installs"] == 4
        assert "S3" in staleness.format_staleness(rows)

    def test_amortization_structure(self):
        rows = amortization.run_amortization(interarrivals=(5.0,), n_updates=4)
        assert {r["algorithm"] for r in rows} == {"sweep", "nested-sweep"}
        assert "S4" in amortization.format_amortization(rows)

    def test_messagesize_structure(self):
        rows = messagesize.run_messagesize(interarrivals=(5.0,), n_updates=4)
        assert {r["algorithm"] for r in rows} == {"eca", "sweep"}
        assert "S5" in messagesize.format_messagesize(rows)


class TestAblation:
    def test_sweep_variants(self):
        rows = ablation.run_sweep_variants(n_sources=3, n_updates=4)
        assert {r["variant"] for r in rows} >= {"sequential", "parallel"}
        assert all(r["consistency"] == "complete" for r in rows)
        assert "A1" in ablation.format_sweep_variants(rows)

    def test_nested_depth(self):
        rows = ablation.run_nested_depth(depths=(None, 0), n_rounds=3)
        by = {r["max_depth"]: r for r in rows}
        assert by["unbounded"]["installs"] <= by[0]["installs"]
        assert "A2" in ablation.format_nested_depth(rows)
