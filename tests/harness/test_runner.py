"""Harness tests: configuration, determinism, reporting, top-level API."""

import random

import pytest

from repro.api import quick_run
from repro.consistency.levels import ConsistencyLevel
from repro.harness.config import ExperimentConfig
from repro.harness.report import format_dict_table, format_table
from repro.harness.runner import build_latency_model, run_experiment


class TestConfig:
    def test_defaults_valid(self):
        config = ExperimentConfig()
        assert config.algorithm == "sweep"
        assert "sweep" in config.describe()

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(n_sources=0)
        with pytest.raises(ValueError):
            ExperimentConfig(n_updates=-1)
        with pytest.raises(ValueError):
            ExperimentConfig(backend="oracle")
        with pytest.raises(ValueError):
            ExperimentConfig(latency_model="warp")
        with pytest.raises(ValueError):
            ExperimentConfig(latency=-1)


class TestDeterminism:
    def test_identical_configs_identical_runs(self):
        config = dict(algorithm="sweep", n_sources=3, n_updates=15, seed=9,
                      mean_interarrival=1.0)
        a = run_experiment(ExperimentConfig(**config))
        b = run_experiment(ExperimentConfig(**config))
        assert a.final_view == b.final_view
        assert a.messages_total == b.messages_total
        assert a.sim_time == b.sim_time
        assert [s.view.as_dict() for s in a.recorder.snapshots] == [
            s.view.as_dict() for s in b.recorder.snapshots
        ]

    def test_seed_changes_run(self):
        a = run_experiment(ExperimentConfig(seed=1, n_updates=15))
        b = run_experiment(ExperimentConfig(seed=2, n_updates=15))
        assert a.sim_time != b.sim_time


class TestRunResult:
    def test_report_renders(self):
        result = run_experiment(ExperimentConfig(n_updates=8, seed=1))
        text = result.report()
        assert "algorithm" in text and "consistency" in text
        assert "complete" in text

    def test_zero_update_run(self):
        result = run_experiment(ExperimentConfig(n_updates=0))
        assert result.updates_delivered == 0
        assert result.messages_per_update == 0.0
        assert result.classified_level == ConsistencyLevel.COMPLETE

    def test_trace_capture(self):
        result = run_experiment(
            ExperimentConfig(n_updates=5, trace=True, seed=1)
        )
        assert result.trace is not None
        assert len(result.trace.filter(kind="install")) == result.installs

    def test_consistency_can_be_skipped(self):
        result = run_experiment(
            ExperimentConfig(n_updates=5, check_consistency=False)
        )
        assert result.consistency == {}
        assert result.classified_level is None
        assert result.consistency_verdict() == "unchecked"

    def test_mean_unreflected_updates(self):
        # sparse updates: every update installs before the next arrives,
        # so on average well under one update is pending
        sparse = run_experiment(ExperimentConfig(
            algorithm="sweep", n_updates=10, seed=1,
            mean_interarrival=500.0, latency=2.0, latency_model="constant",
        ))
        assert sparse.mean_unreflected_updates() < 0.5
        # dense updates: the backlog is visible to readers
        dense = run_experiment(ExperimentConfig(
            algorithm="sweep", n_updates=20, seed=1,
            mean_interarrival=0.5, latency=8.0, latency_model="constant",
        ))
        assert dense.mean_unreflected_updates() > 2.0

    def test_mean_unreflected_zero_updates(self):
        result = run_experiment(ExperimentConfig(n_updates=0))
        assert result.mean_unreflected_updates() == 0.0

    def test_uninstalled_updates_metric(self):
        busy = run_experiment(ExperimentConfig(
            algorithm="nested-sweep", n_updates=15, seed=1,
            mean_interarrival=0.5, latency=8.0, latency_model="constant",
        ))
        assert busy.uninstalled_updates == 0  # all absorbed eventually


class TestGuards:
    def test_max_events_guard_raises(self):
        from repro.simulation.errors import StalledSimulationError

        with pytest.raises(StalledSimulationError):
            run_experiment(ExperimentConfig(
                n_updates=30, mean_interarrival=0.5, max_events=50,
            ))


class TestServiceTime:
    def test_service_time_widens_interference_window(self):
        """A slow ComputeJoin at the sources lengthens the window in which
        updates interfere, so SWEEP compensates more often -- and stays
        completely consistent doing it."""
        from repro.consistency.levels import ConsistencyLevel

        common = dict(algorithm="sweep", seed=6, n_sources=4, n_updates=25,
                      mean_interarrival=1.0, latency=2.0,
                      latency_model="constant", match_fraction=1.0,
                      insert_fraction=0.5, rows_per_relation=8)
        fast = run_experiment(ExperimentConfig(**common))
        slow = run_experiment(
            ExperimentConfig(query_service_time=6.0, **common)
        )
        comp_fast = fast.metrics.counters.get("compensations", 0)
        comp_slow = slow.metrics.counters.get("compensations", 0)
        assert comp_slow > comp_fast
        assert slow.classified_level == ConsistencyLevel.COMPLETE


class TestQuickRun:
    def test_quick_run_round_trip(self):
        result = quick_run(algorithm="sweep", n_sources=3, n_updates=6, seed=3)
        assert result.info.name == "sweep"
        assert result.consistency[ConsistencyLevel.COMPLETE].ok

    def test_quick_run_overrides(self):
        result = quick_run(n_updates=4, mean_interarrival=2.0, backend="sqlite")
        assert result.config.backend == "sqlite"


class TestLatencyFactory:
    def test_all_models(self):
        rng = random.Random(1)
        assert build_latency_model("constant", 2.0, rng).sample() == 2.0
        assert 1.0 <= build_latency_model("uniform", 2.0, rng).sample() <= 3.0
        assert build_latency_model("exponential", 2.0, rng).sample() >= 0
        with pytest.raises(ValueError):
            build_latency_model("warp", 2.0, rng)


class TestReportFormatting:
    def test_format_table(self):
        text = format_table(
            ["name", "value"], [["sweep", 4.0], ["eca", None]], title="T"
        )
        assert "sweep" in text and "4.00" in text and "-" in text
        assert text.splitlines()[0] == "T"

    def test_row_width_validated(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["x", "y"]])

    def test_format_dict_table(self):
        text = format_dict_table(
            [{"a": 1, "b": 2}, {"a": 3}], columns=["a", "b"]
        )
        assert "1" in text and "3" in text
