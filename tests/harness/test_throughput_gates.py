"""Throughput-suite acceptance gates, tested on synthetic rows.

The suite itself drives real runs (``python -m repro
bench-throughput``); here we pin the pure arithmetic of the overhead
gates so a regression message fires exactly when a budget is exceeded.
"""

from repro.harness.throughput import (
    DURABLE_OVERHEAD_TARGET,
    REBALANCE_OVERHEAD_TARGET,
    REPLICA_OVERHEAD_TARGET,
    compare_reports,
    durable_overhead,
    rebalance_overhead,
    replica_overhead,
)


def shard_row(algorithm, updates_per_sec):
    return {
        "mode": "sharded",
        "transport": "local",
        "algorithm": algorithm,
        "locality": "off",
        "updates": 60,
        "updates_installed": 60,
        "updates_per_sec": updates_per_sec,
        "consistency": "complete",
    }


def test_replica_overhead_is_worst_pair():
    rows = [
        shard_row("sweep@shards=2", 100.0),
        shard_row("sweep@shards=2+r1", 95.0),
        shard_row("sweep@shards=4", 200.0),
        shard_row("sweep@shards=4+r1", 160.0),
    ]
    # shards=2 costs 5%, shards=4 costs 20% -- the gate sees the worst.
    assert replica_overhead(rows) == 0.2


def test_replica_overhead_none_without_replica_rows():
    assert replica_overhead([shard_row("sweep@shards=2", 100.0)]) is None
    assert replica_overhead([]) is None


def test_durable_and_replica_pairs_do_not_cross():
    rows = [
        shard_row("sweep@shards=1", 50.0),
        shard_row("sweep@shards=1+durable", 45.0),
        shard_row("sweep@shards=2", 100.0),
        shard_row("sweep@shards=2+r1", 90.0),
    ]
    assert durable_overhead(rows) == 0.1
    assert replica_overhead(rows) == 0.1


def test_rebalance_overhead_is_worst_pair_and_stays_out_of_replica():
    rows = [
        shard_row("sweep@shards=2+v9", 100.0),
        shard_row("sweep@shards=2+v9+rebal", 95.0),
        shard_row("sweep@shards=4+v9", 200.0),
        shard_row("sweep@shards=4+v9+rebal", 170.0),
    ]
    assert rebalance_overhead(rows) == 0.15
    # "+rebal" splits on "+r" too; it must never count as a replica row.
    assert replica_overhead(rows) is None


def test_rebalance_overhead_none_without_rebalance_rows():
    assert rebalance_overhead([shard_row("sweep@shards=2", 100.0)]) is None
    assert rebalance_overhead([]) is None


def test_compare_reports_gates_rebalance_budget():
    current = {
        "rebalance_overhead": REBALANCE_OVERHEAD_TARGET + 0.05,
        "speedups": {},
        "rows": [],
    }
    problems = compare_reports(current, {"speedups": {}, "rows": []})
    assert any("rebalance_overhead" in p for p in problems)
    current["rebalance_overhead"] = REBALANCE_OVERHEAD_TARGET - 0.01
    assert compare_reports(current, {"speedups": {}, "rows": []}) == []


def test_compare_reports_gates_replica_budget():
    over = 1.0 - (REPLICA_OVERHEAD_TARGET + 0.05)
    current = {
        "durable_overhead": DURABLE_OVERHEAD_TARGET - 0.01,
        "replica_overhead": round(1.0 - over, 3),
        "speedups": {},
        "rows": [],
    }
    problems = compare_reports(current, {"speedups": {}, "rows": []})
    assert any("replica_overhead" in p for p in problems)
    current["replica_overhead"] = REPLICA_OVERHEAD_TARGET - 0.01
    assert compare_reports(current, {"speedups": {}, "rows": []}) == []
