"""Timeline renderer tests."""

from repro.harness.config import ExperimentConfig
from repro.harness.runner import run_experiment
from repro.harness.timeline import render_timeline, summarize_lanes
from repro.simulation.trace import TraceLog


def traced_run():
    return run_experiment(
        ExperimentConfig(
            algorithm="sweep", seed=1, n_sources=3, n_updates=5,
            mean_interarrival=2.0, trace=True,
        )
    )


class TestRenderTimeline:
    def test_renders_all_actors(self):
        result = traced_run()
        text = render_timeline(result.trace)
        assert "warehouse" in text
        assert "R1" in text and "R3" in text
        assert "install" in text
        assert "t=" in text

    def test_warehouse_lane_is_last(self):
        result = traced_run()
        header = render_timeline(result.trace).splitlines()[0]
        assert header.rstrip().endswith("warehouse")

    def test_kind_filter(self):
        result = traced_run()
        text = render_timeline(result.trace, kinds=("install",))
        assert "install" in text
        assert "local-update" not in text

    def test_limit_and_truncation_note(self):
        result = traced_run()
        text = render_timeline(result.trace, limit=3)
        assert "more events" in text
        assert len(
            [ln for ln in text.splitlines() if ln.startswith("t=")]
        ) == 3

    def test_empty_trace(self):
        assert render_timeline(TraceLog()) == "(no trace records)"

    def test_summarize_lanes(self):
        result = traced_run()
        summary = summarize_lanes(result.trace)
        assert summary["warehouse"]["install"] == result.installs
        assert summary["warehouse"]["delivered"] == result.updates_delivered
        assert sum(
            lanes.get("local-update", 0) for lanes in summary.values()
        ) == result.updates_delivered
