"""Property-based tests for incremental aggregate maintenance."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.aggregate import (
    AggregateSpec,
    AggregateView,
    recompute_aggregate,
)
from repro.relational.delta import Delta
from repro.relational.relation import Relation
from repro.relational.schema import Schema

SCHEMA = Schema(("g", "v"))
SPECS = (
    AggregateSpec("count"),
    AggregateSpec("sum", "v"),
    AggregateSpec("min", "v"),
    AggregateSpec("max", "v"),
    AggregateSpec("avg", "v"),
)

# An operation stream: each step inserts or deletes one (group, value) row.
# Deletes are made valid by only deleting rows the stream inserted earlier.
ops = st.lists(
    st.tuples(st.sampled_from("abc"), st.integers(0, 9), st.booleans()),
    max_size=60,
)


def _replay(stream):
    """Apply a generated stream, returning (aggregate, shadow relation)."""
    agg = AggregateView(SCHEMA, ("g",), SPECS)
    shadow = Relation(SCHEMA)
    live: list[tuple] = []
    for group, value, want_delete in stream:
        if want_delete and live:
            row = live.pop()
            delta = Delta(SCHEMA, {row: -1})
        else:
            row = (group, value)
            live.append(row)
            delta = Delta(SCHEMA, {row: 1})
        agg.apply(delta)
        shadow.apply_delta(delta)
    return agg, shadow


class TestAggregateProperties:
    @settings(max_examples=60, deadline=None)
    @given(ops)
    def test_incremental_equals_recompute(self, stream):
        agg, shadow = _replay(stream)
        assert agg.as_relation() == recompute_aggregate(shadow, ("g",), SPECS)

    @settings(max_examples=40, deadline=None)
    @given(ops)
    def test_groups_match_distinct_keys(self, stream):
        agg, shadow = _replay(stream)
        expected_groups = {row[0] for row in shadow.rows()}
        assert set(k[0] for k in agg.group_keys()) == expected_groups

    @settings(max_examples=40, deadline=None)
    @given(ops)
    def test_count_and_sum_linear(self, stream):
        """Applying the whole history as ONE delta gives the same result."""
        agg, shadow = _replay(stream)
        oneshot = AggregateView(SCHEMA, ("g",), SPECS)
        oneshot.apply(Delta.from_relation(shadow))
        assert oneshot.as_relation() == agg.as_relation()

    @settings(max_examples=40, deadline=None)
    @given(ops)
    def test_insert_then_full_delete_is_identity(self, stream):
        agg, shadow = _replay(stream)
        agg.apply(Delta.from_relation(shadow).negated())
        assert len(agg) == 0
