"""Property-based tests for the bag algebra (hypothesis).

These pin down the algebraic identities every maintenance algorithm relies
on; a violation in any of them would silently corrupt compensation.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.relational.algebra import difference, join, project, select, union
from repro.relational.delta import Delta
from repro.relational.predicate import AttrCompare, AttrEq
from repro.relational.relation import Relation
from repro.relational.schema import Schema

AB = Schema(("A", "B"))
CD = Schema(("C", "D"))

values = st.integers(min_value=0, max_value=4)
rows_ab = st.tuples(values, values)
rows_cd = st.tuples(values, values)


def relations(schema, rows):
    return st.dictionaries(rows, st.integers(1, 3), max_size=6).map(
        lambda d: Relation(schema, d)
    )


def deltas(schema, rows):
    return (
        st.dictionaries(rows, st.integers(-3, 3).filter(bool), max_size=6)
        .map(lambda d: Delta(schema, d))
    )


class TestBagIdentities:
    @given(deltas(AB, rows_ab))
    def test_difference_with_self_is_empty(self, d):
        assert len(difference(d, d)) == 0

    @given(deltas(AB, rows_ab), deltas(AB, rows_ab))
    def test_union_commutative(self, a, b):
        assert union(a, b) == union(b, a)

    @given(deltas(AB, rows_ab), deltas(AB, rows_ab), deltas(AB, rows_ab))
    def test_union_associative(self, a, b, c):
        assert union(union(a, b), c) == union(a, union(b, c))

    @given(deltas(AB, rows_ab), deltas(AB, rows_ab))
    def test_difference_is_union_of_negation(self, a, b):
        assert difference(a, b) == union(a, b.negated())

    @given(deltas(AB, rows_ab))
    def test_double_negation(self, d):
        assert d.negated().negated() == d

    @given(deltas(AB, rows_ab))
    def test_positive_negative_decomposition(self, d):
        pos, neg = d.positive_part(), d.negative_part()
        rebuilt = difference(
            Delta.from_relation(pos), Delta.from_relation(neg)
        )
        assert rebuilt == d


class TestJoinProperties:
    @given(relations(AB, rows_ab), relations(CD, rows_cd))
    def test_join_total_count_product_on_cross(self, r, s):
        assert join(r, s).total_count == r.total_count * s.total_count

    @given(deltas(AB, rows_ab), relations(CD, rows_cd))
    def test_join_distributes_over_union(self, d, s):
        """(d1 + d2) |><| s == d1 |><| s + d2 |><| s -- linearity, the
        property on which all delta compensation rests."""
        pos = Delta.from_relation(d.positive_part())
        neg = Delta.from_relation(d.negative_part()).negated()
        cond = AttrEq("B", "C")
        combined = union(join(pos, s, cond), join(neg, s, cond))
        assert combined == join(d, s, cond)

    @given(relations(AB, rows_ab), relations(CD, rows_cd))
    def test_incremental_maintenance_identity(self, r, s):
        """(R + dR) |><| S == R |><| S + dR |><| S for an arbitrary delta."""
        delta = Delta(AB, {(9, 1): 2, (0, 0): 1})
        cond = AttrEq("B", "C")
        updated = Relation(AB, r.as_dict())
        updated.apply_delta(delta)
        full = join(updated, s, cond)
        incremental = union(
            Delta.from_relation(join(r, s, cond)), join(delta, s, cond)
        )
        assert incremental.positive_part() == full

    @given(deltas(AB, rows_ab), relations(CD, rows_cd))
    def test_join_sign_symmetry(self, d, s):
        cond = AttrEq("B", "C")
        assert join(d.negated(), s, cond) == join(d, s, cond).negated()


class TestSelectProjectProperties:
    @given(deltas(AB, rows_ab))
    def test_select_partitions(self, d):
        pred = AttrCompare("A", ">=", 2)
        inside = select(d, pred)
        outside = select(d, ~pred)
        assert union(inside, outside) == d

    @given(deltas(AB, rows_ab))
    def test_select_idempotent(self, d):
        pred = AttrCompare("A", ">=", 2)
        assert select(select(d, pred), pred) == select(d, pred)

    @given(deltas(AB, rows_ab))
    def test_project_preserves_total_count(self, d):
        assert project(d, ["B"]).total_count == d.total_count

    @given(deltas(AB, rows_ab), deltas(AB, rows_ab))
    def test_project_linear(self, a, b):
        assert project(union(a, b), ["B"]) == union(
            project(a, ["B"]), project(b, ["B"])
        )

    @given(relations(AB, rows_ab))
    def test_full_projection_is_identity_on_rows(self, r):
        assert project(r, ["A", "B"]) == r
