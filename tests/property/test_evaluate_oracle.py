"""The oracle of the oracle: ViewDefinition.evaluate vs naive enumeration.

The consistency checkers trust ``ViewDefinition.evaluate``.  This module
verifies that trust: a from-first-principles evaluator (enumerate every
combination of base rows, test every condition on the combined row, apply
sigma/pi by hand) must agree with the engine's hash-join pipeline on
randomized schemas, data and conditions.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.predicate import AttrCompare, AttrEq
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.view import ViewDefinition


def naive_evaluate(view: ViewDefinition, states: dict) -> Relation:
    """Nested-loop SPJ evaluation: the most obviously correct thing."""
    relations = [states[name] for name in view.relation_names]
    wide_rows: dict[tuple, int] = {}
    compiled_joins = [c.compile(view.wide_schema) for c in view.join_conditions]
    compiled_sel = view.selection.compile(view.wide_schema)
    for combo in itertools.product(*(list(r.items()) for r in relations)):
        row = tuple(v for (r, _) in combo for v in r)
        count = 1
        for _, c in combo:
            count *= c
        if not all(fn(row) for fn in compiled_joins):
            continue
        if not compiled_sel(row):
            continue
        wide_rows[row] = wide_rows.get(row, 0) + count
    if view.projection is None:
        return Relation(view.wide_schema, wide_rows)
    indices = view.wide_schema.project_indices(view.projection)
    projected: dict[tuple, int] = {}
    for row, count in wide_rows.items():
        key = tuple(row[i] for i in indices)
        projected[key] = projected.get(key, 0) + count
    return Relation(view.view_schema, projected)


small_value = st.integers(0, 3)


@st.composite
def random_view_and_states(draw):
    n = draw(st.integers(1, 3))
    schemas = []
    for i in range(1, n + 1):
        width = draw(st.integers(1, 3))
        schemas.append(
            Schema(tuple(f"a{i}_{k}" for k in range(width)))
        )
    # join conditions: chain equalities on random attributes
    conditions = []
    for i in range(n - 1):
        left_attr = draw(st.sampled_from(schemas[i].attributes))
        right_attr = draw(st.sampled_from(schemas[i + 1].attributes))
        conditions.append(AttrEq(left_attr, right_attr))
    # optional extra non-adjacent condition
    if n == 3 and draw(st.booleans()):
        conditions.append(
            AttrEq(
                draw(st.sampled_from(schemas[0].attributes)),
                draw(st.sampled_from(schemas[2].attributes)),
            )
        )
    all_attrs = [a for s in schemas for a in s.attributes]
    selection = None
    if draw(st.booleans()):
        selection = AttrCompare(
            draw(st.sampled_from(all_attrs)),
            draw(st.sampled_from(["<", "<=", ">", ">=", "==", "!="])),
            draw(small_value),
        )
    projection = None
    if draw(st.booleans()):
        k = draw(st.integers(1, len(all_attrs)))
        projection = draw(
            st.lists(
                st.sampled_from(all_attrs), min_size=k, max_size=k,
                unique=True,
            )
        )
    view = ViewDefinition(
        name="rand",
        relation_names=tuple(f"T{i}" for i in range(1, n + 1)),
        schemas=tuple(schemas),
        join_conditions=tuple(conditions),
        selection=selection,
        projection=projection,
    )
    states = {}
    for i, schema in enumerate(schemas, start=1):
        rows = draw(
            st.dictionaries(
                st.tuples(*([small_value] * len(schema))),
                st.integers(1, 2),
                max_size=4,
            )
        )
        states[f"T{i}"] = Relation(schema, rows)
    return view, states


class TestEvaluateAgainstNaive:
    @settings(max_examples=80, deadline=None)
    @given(random_view_and_states())
    def test_engine_matches_nested_loops(self, view_and_states):
        view, states = view_and_states
        assert view.evaluate(states) == naive_evaluate(view, states)

    def test_naive_on_paper_example(self, paper_view, paper_states):
        assert naive_evaluate(paper_view, paper_states) == paper_view.evaluate(
            paper_states
        )
