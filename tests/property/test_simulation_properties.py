"""Property-based tests for the simulation kernel's guarantees.

The FIFO property is the foundation of every correctness claim in the
paper; these tests hammer it with randomized latency models, send
patterns and interleavings.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.channel import Channel, Message
from repro.simulation.kernel import Simulator
from repro.simulation.latency import (
    ConstantLatency,
    ExponentialLatency,
    UniformLatency,
)
from repro.simulation.mailbox import Mailbox


def _latency(kind: str, rng: random.Random):
    if kind == "constant":
        return ConstantLatency(rng.uniform(0, 5))
    if kind == "uniform":
        lo = rng.uniform(0, 3)
        return UniformLatency(lo, lo + rng.uniform(0, 5), rng)
    return ExponentialLatency(rng.uniform(0.1, 5), rng)


class TestFifoProperty:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(0, 10_000),
        st.sampled_from(["constant", "uniform", "exponential"]),
        st.lists(st.floats(0.0, 2.0), min_size=1, max_size=40),
    )
    def test_single_channel_fifo(self, seed, kind, gaps):
        """Messages always arrive in send order, whatever the latencies."""
        rng = random.Random(seed)
        sim = Simulator()
        box = Mailbox(sim, "dst")
        channel = Channel(sim, "ch", box, _latency(kind, rng))
        received = []

        def consumer():
            while True:
                msg = yield box.get()
                received.append(msg.payload)

        sim.spawn("c", consumer())

        t = 0.0
        for i, gap in enumerate(gaps):
            t += gap
            sim.schedule_at(
                t,
                lambda i=i: channel.send(Message(kind="m", sender="s", payload=i)),
            )
        sim.run()
        assert received == list(range(len(gaps)))

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(0, 10_000),
        st.integers(2, 5),
        st.integers(5, 30),
    )
    def test_many_channels_interleave_but_stay_fifo(self, seed, n_channels, n_msgs):
        """Cross-channel order is arbitrary; per-channel order never is."""
        rng = random.Random(seed)
        sim = Simulator()
        box = Mailbox(sim, "dst")
        channels = [
            Channel(sim, f"ch{c}", box, _latency("exponential", rng))
            for c in range(n_channels)
        ]
        received: list[tuple[int, int]] = []

        def consumer():
            while True:
                msg = yield box.get()
                received.append(msg.payload)

        sim.spawn("c", consumer())
        counters = [0] * n_channels

        def do_send(c: int) -> None:
            # stamp the per-channel send sequence at send time
            i = counters[c]
            counters[c] += 1
            channels[c].send(Message(kind="m", sender=f"s{c}", payload=(c, i)))

        for _ in range(n_msgs):
            c = rng.randrange(n_channels)
            t = rng.uniform(0, 20)
            sim.schedule_at(t, lambda c=c: do_send(c))
        sim.run()
        assert len(received) == n_msgs
        per_channel: dict[int, list[int]] = {}
        for c, i in received:
            per_channel.setdefault(c, []).append(i)
        for c, seqs in per_channel.items():
            assert seqs == list(range(len(seqs))), f"channel {c} reordered"

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 30))
    def test_delivery_times_monotone_per_channel(self, seed, n_msgs):
        rng = random.Random(seed)
        sim = Simulator()
        box = Mailbox(sim, "dst")
        channel = Channel(sim, "ch", box, _latency("exponential", rng))
        arrivals = []

        def consumer():
            while True:
                msg = yield box.get()
                arrivals.append(msg.delivered_at)

        sim.spawn("c", consumer())
        t = 0.0
        for _ in range(n_msgs):
            t += rng.uniform(0, 1)
            sim.schedule_at(
                t, lambda: channel.send(Message(kind="m", sender="s", payload=0))
            )
        sim.run()
        assert arrivals == sorted(arrivals)
        assert len(arrivals) == n_msgs


class TestDeterminismProperty:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_identical_seeds_identical_traces(self, seed):
        def run_once():
            rng = random.Random(seed)
            sim = Simulator()
            box = Mailbox(sim, "dst")
            channel = Channel(sim, "ch", box, ExponentialLatency(1.0, rng))
            log = []

            def consumer():
                while True:
                    msg = yield box.get()
                    log.append((sim.now, msg.payload))

            sim.spawn("c", consumer())
            for i in range(20):
                sim.schedule_at(
                    i * 0.3,
                    lambda i=i: channel.send(
                        Message(kind="m", sender="s", payload=i)
                    ),
                )
            sim.run()
            return log

        assert run_once() == run_once()
