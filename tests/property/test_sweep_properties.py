"""Property-based end-to-end checks: consistency under random workloads.

Hypothesis drives the *workload shape* (source count, update mix, timing,
seed); the consistency oracle independently verifies each run.  These are
the strongest correctness statements in the suite: SWEEP is completely
consistent for every generated race, Nested SWEEP at least strongly, and
C-Strobe completely.
"""

from hypothesis import given, settings, HealthCheck
from hypothesis import strategies as st

from repro.consistency.levels import ConsistencyLevel
from repro.harness.config import ExperimentConfig
from repro.harness.runner import run_experiment
from repro.relational.delta import Delta
from repro.relational.incremental import PartialView
from repro.relational.relation import Relation
from repro.workloads.schema_gen import chain_view

# Small, hostile configurations: latency comparable to inter-arrival time.
workload_params = st.fixed_dictionaries(
    {
        "seed": st.integers(0, 10_000),
        "n_sources": st.integers(1, 4),
        "n_updates": st.integers(0, 12),
        "mean_interarrival": st.sampled_from([0.5, 1.0, 3.0]),
        "latency": st.sampled_from([2.0, 6.0]),
        "insert_fraction": st.sampled_from([0.0, 0.5, 1.0]),
    }
)

END_TO_END = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _run(algorithm, params, **extra):
    return run_experiment(
        ExperimentConfig(
            algorithm=algorithm,
            rows_per_relation=6,
            match_fraction=1.0,
            latency_model="uniform",
            **params,
            **extra,
        )
    )


class TestEndToEndConsistency:
    @END_TO_END
    @given(workload_params)
    def test_sweep_always_complete(self, params):
        result = _run("sweep", params)
        assert result.classified_level == ConsistencyLevel.COMPLETE

    @END_TO_END
    @given(workload_params)
    def test_nested_sweep_at_least_strong(self, params):
        result = _run("nested-sweep", params)
        assert result.classified_level >= ConsistencyLevel.STRONG

    @END_TO_END
    @given(workload_params)
    def test_cstrobe_always_complete(self, params):
        result = _run("c-strobe", params)
        assert result.classified_level == ConsistencyLevel.COMPLETE

    @END_TO_END
    @given(workload_params)
    def test_strobe_at_least_strong(self, params):
        result = _run("strobe", params)
        assert result.classified_level >= ConsistencyLevel.STRONG

    @END_TO_END
    @given(workload_params)
    def test_eca_at_least_strong(self, params):
        result = _run("eca", params)
        assert result.classified_level >= ConsistencyLevel.STRONG

    @END_TO_END
    @given(workload_params)
    def test_pipelined_trajectory_equals_sequential(self, params):
        """Pipelining must not change *what* is installed, only when.

        Caveat discovered by this very property: the two runs' protocol
        traffic perturbs the channels' seeded latency draws, so the
        *delivery order itself* can differ between algorithms -- and each
        is complete with respect to its own order.  The comparable claim:
        identical delivery order implies identical installed trajectory,
        and final states always agree.
        """
        sequential = _run("sweep", params)
        pipelined = _run("pipelined-sweep", params)
        assert pipelined.final_view == sequential.final_view
        seq_order = [
            (n.source_index, n.seq) for n in sequential.recorder.deliveries
        ]
        pipe_order = [
            (n.source_index, n.seq) for n in pipelined.recorder.deliveries
        ]
        if seq_order == pipe_order:
            assert [
                s.view.as_dict() for s in sequential.recorder.snapshots
            ] == [s.view.as_dict() for s in pipelined.recorder.snapshots]

    @END_TO_END
    @given(workload_params)
    def test_sweep_with_source_local_transactions(self, params):
        """Multi-row atomic updates (type 2) keep complete consistency."""
        result = _run("sweep", params, txn_fraction=0.5, txn_max_rows=3)
        assert result.classified_level == ConsistencyLevel.COMPLETE

    @END_TO_END
    @given(workload_params)
    def test_sweep_message_complexity_invariant(self, params):
        """Exactly 2(n-1) protocol messages per update, regardless of races."""
        result = _run("sweep", params)
        expected = 2 * (params["n_sources"] - 1) * result.updates_delivered
        assert result.protocol_messages == expected

    @END_TO_END
    @given(workload_params)
    def test_pipelined_sweep_always_complete(self, params):
        result = _run("pipelined-sweep", params)
        assert result.classified_level == ConsistencyLevel.COMPLETE
        assert result.installs == result.updates_delivered

    @END_TO_END
    @given(workload_params)
    def test_global_sweep_atomic_and_strong(self, params):
        from repro.consistency.atomicity import check_transaction_atomicity

        result = _run(
            "global-sweep", params, global_txn_fraction=0.3,
            max_check_vectors=100_000,
        )
        atom = check_transaction_atomicity(
            result.recorder.history, result.recorder.snapshots
        )
        assert atom.ok, atom.violations
        assert result.classified_level >= ConsistencyLevel.STRONG

    @END_TO_END
    @given(workload_params)
    def test_bootstrap_sweep_strong(self, params):
        result = _run("bootstrap-sweep", params)
        assert result.classified_level >= ConsistencyLevel.STRONG

    @END_TO_END
    @given(workload_params)
    def test_parallel_sweep_equivalent(self, params):
        sequential = _run("sweep", params)
        parallel = _run("sweep", params, sweep_parallel=True)
        assert parallel.final_view == sequential.final_view
        assert parallel.classified_level == ConsistencyLevel.COMPLETE


class TestSweepOrderInvariance:
    """Extending a PartialView in any valid order yields the same delta."""

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000), st.integers(2, 5), st.data())
    def test_extension_order_irrelevant(self, seed, n, data):
        import random

        from repro.workloads.data_gen import generate_initial_states

        rng = random.Random(seed)
        view = chain_view(n)
        states, gen = generate_initial_states(view, rng, 5, match_fraction=1.0)
        index = rng.randint(1, n)
        row = (gen.fresh_key(index), rng.randrange(6), rng.randrange(6))
        delta = Delta.insert(view.schema_of(index), row)

        remaining = [j for j in range(1, n + 1) if j != index]

        def sweep(order):
            partial = PartialView.initial(view, index, delta)
            pending = list(order)
            while pending:
                # pick the next requested index that is adjacent
                for j in pending:
                    if partial.is_adjacent(j):
                        partial = partial.extend(j, states[view.name_of(j)])
                        pending.remove(j)
                        break
            return partial

        baseline = sweep(remaining)  # left-to-right preference
        shuffled = list(remaining)
        data.draw(st.randoms(use_true_random=False)).shuffle(shuffled)
        assert sweep(shuffled).delta == baseline.delta
        assert baseline.complete


class TestSweepStepProperty:
    """A full sweep (no concurrency) equals the recompute delta."""

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(0, 10_000),
        st.integers(1, 4),
        st.booleans(),
    )
    def test_sweep_equals_recompute(self, seed, n, is_insert):
        import random

        rng = random.Random(seed)
        view = chain_view(n)
        from repro.workloads.data_gen import generate_initial_states

        states, gen = generate_initial_states(view, rng, 6, match_fraction=1.0)
        index = rng.randint(1, n)
        schema = view.schema_of(index)
        if is_insert or not gen.live_rows[index]:
            row = (gen.fresh_key(index), rng.randrange(7), rng.randrange(7))
            delta = Delta.insert(schema, row)
        else:
            victim = rng.choice(gen.live_rows[index])
            delta = Delta.delete(schema, victim)

        partial = PartialView.initial(view, index, delta)
        for j in range(index - 1, 0, -1):
            partial = partial.extend(j, states[view.name_of(j)])
        for j in range(index + 1, n + 1):
            partial = partial.extend(j, states[view.name_of(j)])

        before = view.evaluate(states)
        after_states = {k: Relation(v.schema, v.as_dict()) for k, v in states.items()}
        after_states[view.name_of(index)].apply_delta(delta)
        after = view.evaluate(after_states)

        installed = before.copy()
        installed.apply_delta(view.finalize(partial.delta))
        assert installed == after
