"""Aggregate view tests: specs, incremental maintenance, retraction."""

import pytest

from repro.relational.aggregate import (
    AggregateSpec,
    AggregateView,
    recompute_aggregate,
)
from repro.relational.delta import Delta, delta_from_rows
from repro.relational.errors import NegativeCountError, SchemaError
from repro.relational.relation import Relation
from repro.relational.schema import Schema

SCHEMA = Schema(("region", "price"))


def make_agg(specs=None, group_by=("region",)):
    specs = specs or (
        AggregateSpec("count"),
        AggregateSpec("sum", "price"),
        AggregateSpec("min", "price"),
        AggregateSpec("max", "price"),
        AggregateSpec("avg", "price"),
    )
    return AggregateView(SCHEMA, group_by, specs)


class TestSpec:
    def test_bad_func(self):
        with pytest.raises(ValueError):
            AggregateSpec("median", "price")

    def test_count_takes_no_attr(self):
        with pytest.raises(ValueError):
            AggregateSpec("count", "price")

    def test_others_need_attr(self):
        with pytest.raises(ValueError):
            AggregateSpec("sum")

    def test_column_names(self):
        assert AggregateSpec("count").column_name == "count"
        assert AggregateSpec("sum", "price").column_name == "sum_price"
        assert AggregateSpec("sum", "price", name="revenue").column_name == "revenue"


class TestConstruction:
    def test_output_schema(self):
        agg = make_agg()
        assert agg.schema.attributes == (
            "region", "count", "sum_price", "min_price", "max_price",
            "avg_price",
        )
        assert agg.schema.key == ("region",)

    def test_needs_aggregates(self):
        with pytest.raises(ValueError):
            AggregateView(SCHEMA, ("region",), ())

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            AggregateView(
                SCHEMA, ("region",),
                (AggregateSpec("sum", "price"), AggregateSpec("sum", "price")),
            )

    def test_unknown_attrs_rejected(self):
        with pytest.raises(SchemaError):
            AggregateView(SCHEMA, ("zone",), (AggregateSpec("count"),))


class TestMaintenance:
    def test_inserts(self):
        agg = make_agg()
        agg.apply(delta_from_rows(SCHEMA, inserts=[("w", 10), ("w", 30), ("e", 5)]))
        rel = agg.as_relation()
        assert rel.count(("w", 2, 40, 10, 30, 20.0)) == 1
        assert rel.count(("e", 1, 5, 5, 5, 5.0)) == 1

    def test_multiplicity_counts(self):
        agg = make_agg()
        agg.apply(Delta(SCHEMA, {("w", 10): 3}))
        assert agg.value_of(("w",), 0) == 3
        assert agg.value_of(("w",), 1) == 30

    def test_delete_retracts_extremum(self):
        """The MIN/MAX retraction case naive implementations get wrong."""
        agg = make_agg()
        agg.apply(delta_from_rows(SCHEMA, inserts=[("w", 10), ("w", 30)]))
        agg.apply(delta_from_rows(SCHEMA, deletes=[("w", 30)]))
        assert agg.value_of(("w",), 3) == 10  # max fell back
        assert agg.value_of(("w",), 2) == 10

    def test_group_disappears_at_zero(self):
        agg = make_agg()
        agg.apply(delta_from_rows(SCHEMA, inserts=[("w", 10)]))
        agg.apply(delta_from_rows(SCHEMA, deletes=[("w", 10)]))
        assert len(agg) == 0
        assert agg.group_keys() == []

    def test_overdelete_raises(self):
        agg = make_agg()
        with pytest.raises(NegativeCountError):
            agg.apply(delta_from_rows(SCHEMA, deletes=[("w", 10)]))

    def test_schema_mismatch(self):
        agg = make_agg()
        with pytest.raises(SchemaError):
            agg.apply(Delta(Schema(("x", "y"))))

    def test_global_group(self):
        agg = AggregateView(SCHEMA, (), (AggregateSpec("sum", "price"),))
        agg.apply(delta_from_rows(SCHEMA, inserts=[("w", 10), ("e", 5)]))
        assert agg.value_of((), 0) == 15

    def test_count_distinct(self):
        agg = AggregateView(
            SCHEMA, ("region",), (AggregateSpec("count_distinct", "price"),)
        )
        agg.apply(delta_from_rows(
            SCHEMA, inserts=[("w", 10), ("w", 10), ("w", 30)]
        ))
        assert agg.value_of(("w",), 0) == 2
        agg.apply(delta_from_rows(SCHEMA, deletes=[("w", 30)]))
        assert agg.value_of(("w",), 0) == 1
        # the duplicate 10 is still present twice: deleting one keeps it
        agg.apply(delta_from_rows(SCHEMA, deletes=[("w", 10)]))
        assert agg.value_of(("w",), 0) == 1

    def test_count_distinct_matches_recompute(self):
        specs = (AggregateSpec("count_distinct", "price"),)
        rel = Relation(SCHEMA, {("w", 10): 2, ("w", 30): 1, ("e", 10): 1})
        agg = AggregateView.over_relation(rel, ("region",), specs)
        assert agg.as_relation() == recompute_aggregate(rel, ("region",), specs)

    def test_over_relation_initialization(self):
        rel = Relation(SCHEMA, [("w", 10), ("w", 20)])
        agg = AggregateView.over_relation(
            rel, ("region",), (AggregateSpec("count"),)
        )
        assert agg.value_of(("w",), 0) == 2


class TestAgainstRecompute:
    @pytest.mark.parametrize("seed", range(6))
    def test_incremental_equals_recompute(self, seed):
        """Random insert/delete streams: incremental == from-scratch."""
        import random

        rng = random.Random(seed)
        specs = (
            AggregateSpec("count"),
            AggregateSpec("sum", "price"),
            AggregateSpec("min", "price"),
            AggregateSpec("max", "price"),
        )
        agg = make_agg(specs)
        shadow = Relation(SCHEMA)
        live: list[tuple] = []
        for _ in range(120):
            if live and rng.random() < 0.4:
                row = live.pop(rng.randrange(len(live)))
                delta = delta_from_rows(SCHEMA, deletes=[row])
            else:
                row = (rng.choice("wens"), rng.randrange(50))
                live.append(row)
                delta = delta_from_rows(SCHEMA, inserts=[row])
            agg.apply(delta)
            shadow.apply_delta(delta)
            if rng.random() < 0.2:
                expected = recompute_aggregate(shadow, ("region",), specs)
                assert agg.as_relation() == expected
        assert agg.as_relation() == recompute_aggregate(shadow, ("region",), specs)


class TestWarehouseIntegration:
    def test_attached_aggregate_tracks_sweep_installs(self):
        """End to end: an aggregate attached to the warehouse view equals a
        recompute over the final view after a full SWEEP run."""
        from repro.harness.config import ExperimentConfig
        from repro.harness.runner import run_experiment

        config = ExperimentConfig(
            algorithm="sweep", seed=4, n_sources=3, n_updates=15,
            mean_interarrival=1.5, match_fraction=1.0, insert_fraction=0.5,
        )
        result = run_experiment(config)
        store = result.warehouse.store
        specs = (AggregateSpec("count"), AggregateSpec("sum", "V3"))
        agg = store.attach_aggregate(("K1",), specs)
        # feed a further delta through the store and compare to recompute
        from repro.relational.delta import Delta

        first_row = next(iter(store.relation.rows()), None)
        if first_row is not None:
            store.apply(Delta(store.relation.schema, {first_row: -1}))
        assert agg.as_relation() == recompute_aggregate(
            store.relation, ("K1",), specs
        )

    def test_aggregate_requires_strict_store(self, paper_view, paper_states):
        from repro.warehouse.view_store import MaterializedView

        store = MaterializedView.from_states(paper_view, paper_states, strict=False)
        with pytest.raises(ValueError):
            store.attach_aggregate((), (AggregateSpec("count"),))

    def test_aggregate_initialized_from_contents(self, paper_view, paper_states):
        from repro.warehouse.view_store import MaterializedView

        store = MaterializedView.from_states(paper_view, paper_states)
        agg = store.attach_aggregate((), (AggregateSpec("count"),))
        assert agg.value_of((), 0) == 2  # (7,8)[2]
        assert store.aggregates == (agg,)
