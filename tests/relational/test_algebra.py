"""Unit tests for the bag algebra operators."""

import pytest

from repro.relational.algebra import (
    difference,
    join,
    project,
    scale,
    select,
    union,
)
from repro.relational.delta import Delta, delta_from_rows
from repro.relational.errors import HeterogeneousSchemaError, SchemaError
from repro.relational.predicate import AttrCompare, AttrEq, And
from repro.relational.relation import Relation
from repro.relational.schema import Schema

AB = Schema(("A", "B"))
CD = Schema(("C", "D"))


class TestSelect:
    def test_filters_rows(self):
        r = Relation(AB, [(1, 2), (3, 4)])
        out = select(r, AttrCompare("A", ">", 2))
        assert out == Relation(AB, [(3, 4)])

    def test_preserves_counts(self):
        r = Relation(AB, {(1, 2): 5})
        out = select(r, AttrCompare("A", "==", 1))
        assert out.count((1, 2)) == 5

    def test_delta_in_delta_out(self):
        d = delta_from_rows(AB, deletes=[(1, 2)])
        out = select(d, AttrCompare("A", "==", 1))
        assert isinstance(out, Delta)
        assert out.count((1, 2)) == -1

    def test_pure(self):
        r = Relation(AB, [(1, 2)])
        select(r, AttrCompare("A", ">", 100))
        assert r.count((1, 2)) == 1


class TestProject:
    def test_collapsing_sums_counts(self):
        r = Relation(AB, [(1, 9), (2, 9)])
        out = project(r, ["B"])
        assert out.count((9,)) == 2

    def test_reorder(self):
        r = Relation(AB, [(1, 2)])
        out = project(r, ["B", "A"])
        assert out.count((2, 1)) == 1
        assert out.schema.attributes == ("B", "A")

    def test_signed_cancellation(self):
        d = delta_from_rows(AB, inserts=[(1, 9)], deletes=[(2, 9)])
        out = project(d, ["B"])
        assert len(out) == 0  # +1 and -1 collapse to zero


class TestScale:
    def test_scale_counts(self):
        r = Relation(AB, {(1, 2): 2})
        assert scale(r, 3).count((1, 2)) == 6
        assert scale(r, -1).count((1, 2)) == -2

    def test_scale_zero_empties(self):
        r = Relation(AB, {(1, 2): 2})
        assert len(scale(r, 0)) == 0


class TestUnionDifference:
    def test_union_counts_add(self):
        a = Relation(AB, {(1, 2): 1})
        b = Relation(AB, {(1, 2): 2, (3, 4): 1})
        out = union(a, b)
        assert isinstance(out, Relation)
        assert out.count((1, 2)) == 3

    def test_union_with_delta_is_delta(self):
        a = Relation(AB, {(1, 2): 1})
        d = Delta.delete(AB, (1, 2))
        out = union(a, d)
        assert isinstance(out, Delta)
        assert len(out) == 0

    def test_difference_always_signed(self):
        a = Relation(AB, {(1, 2): 1})
        b = Relation(AB, {(1, 2): 3})
        out = difference(a, b)
        assert isinstance(out, Delta)
        assert out.count((1, 2)) == -2

    def test_schema_mismatch(self):
        with pytest.raises(HeterogeneousSchemaError):
            union(Relation(AB), Relation(CD))
        with pytest.raises(HeterogeneousSchemaError):
            difference(Relation(AB), Relation(CD))


class TestJoin:
    def test_equi_join(self):
        left = Relation(AB, [(1, 3), (2, 3), (5, 9)])
        right = Relation(CD, [(3, 7)])
        out = join(left, right, AttrEq("B", "C"))
        assert out.count((1, 3, 3, 7)) == 1
        assert out.count((2, 3, 3, 7)) == 1
        assert out.distinct_count == 2
        assert out.schema.attributes == ("A", "B", "C", "D")

    def test_counts_multiply(self):
        left = Relation(AB, {(1, 3): 2})
        right = Relation(CD, {(3, 7): 3})
        out = join(left, right, AttrEq("B", "C"))
        assert out.count((1, 3, 3, 7)) == 6

    def test_signs_multiply(self):
        left = Delta.delete(AB, (1, 3))
        right = Delta.delete(CD, (3, 7))
        out = join(left, right, AttrEq("B", "C"))
        assert out.count((1, 3, 3, 7)) == 1  # (-1) * (-1)

    def test_delta_joined_with_relation_is_delta(self):
        left = Delta.delete(AB, (1, 3))
        right = Relation(CD, [(3, 7)])
        out = join(left, right, AttrEq("B", "C"))
        assert isinstance(out, Delta)
        assert out.count((1, 3, 3, 7)) == -1

    def test_cross_product_when_no_condition(self):
        left = Relation(AB, [(1, 1), (2, 2)])
        right = Relation(CD, [(3, 3)])
        out = join(left, right)
        assert out.distinct_count == 2

    def test_residual_condition(self):
        left = Relation(AB, [(1, 3), (2, 3)])
        right = Relation(CD, [(3, 7)])
        cond = And(AttrEq("B", "C"), AttrCompare("A", ">", 1))
        out = join(left, right, cond)
        assert out.distinct_count == 1
        assert out.count((2, 3, 3, 7)) == 1

    def test_non_equi_theta_join(self):
        left = Relation(AB, [(1, 1), (5, 5)])
        right = Relation(CD, [(3, 3)])
        # A < C has no usable equality: nested loop path
        from repro.relational.predicate import Predicate

        class LessThan(Predicate):
            def compile(self, schema):
                ai, ci = schema.index_of("A"), schema.index_of("C")
                return lambda row: row[ai] < row[ci]

            def attributes(self):
                return frozenset({"A", "C"})

        out = join(left, right, LessThan())
        assert out.distinct_count == 1
        assert out.count((1, 1, 3, 3)) == 1

    def test_empty_operand_short_circuit(self):
        out = join(Relation(AB), Relation(CD, [(3, 7)]), AttrEq("B", "C"))
        assert len(out) == 0

    def test_hash_side_choice_is_equivalent(self):
        small = Relation(AB, [(1, 3)])
        big = Relation(CD, [(3, i) for i in range(10)])
        ab = join(small, big, AttrEq("B", "C"))
        # force the other hashing side by swapping operand sizes
        ba = join(big, small, AttrEq("B", "C"))
        assert ab.total_count == ba.total_count == 10

    def test_overlapping_schemas_rejected(self):
        with pytest.raises(SchemaError):
            join(Relation(AB), Relation(AB))


class TestIncrementalIdentity:
    """The algebraic identity incremental maintenance relies on:
    (R1 + dR1) |><| R2 == R1 |><| R2 + dR1 |><| R2 (Section 3)."""

    def test_identity_for_inserts_and_deletes(self):
        r1 = Relation(AB, [(1, 3), (2, 3)])
        r2 = Relation(CD, [(3, 7), (3, 5)])
        d1 = delta_from_rows(AB, inserts=[(4, 3)], deletes=[(2, 3)])

        updated = Relation(AB, r1.as_dict())
        updated.apply_delta(d1)
        full = join(updated, r2, AttrEq("B", "C"))

        base = join(r1, r2, AttrEq("B", "C"))
        incr = join(d1, r2, AttrEq("B", "C"))
        combined = union(Delta.from_relation(base), incr)

        assert combined.positive_part() == full
