"""Unit tests for PartialView: the sweep-step algebra of Section 4/5."""

import pytest

from repro.relational.delta import Delta
from repro.relational.errors import SchemaError
from repro.relational.incremental import PartialView, compute_join
from repro.relational.predicate import AttrEq
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.view import ViewDefinition

R1 = Schema(("A", "B"))
R2 = Schema(("C", "D"))
R3 = Schema(("E", "F"))


def view():
    return ViewDefinition(
        name="V",
        relation_names=("R1", "R2", "R3"),
        schemas=(R1, R2, R3),
        join_conditions=(AttrEq("B", "C"), AttrEq("D", "E")),
        projection=("D", "F"),
    )


def states():
    return {
        "R1": Relation(R1, [(1, 3), (2, 3)]),
        "R2": Relation(R2, [(3, 7)]),
        "R3": Relation(R3, [(5, 6), (7, 8)]),
    }


class TestInitial:
    def test_seed(self):
        v = view()
        p = PartialView.initial(v, 2, Delta.insert(R2, (3, 5)))
        assert (p.lo, p.hi) == (2, 2)
        assert p.covered == frozenset({2})
        assert not p.complete

    def test_schema_checked(self):
        v = view()
        with pytest.raises(SchemaError):
            PartialView.initial(v, 1, Delta.insert(R2, (3, 5)))


class TestExtend:
    def test_left_extend(self):
        """The paper's first sweep step: Delta-R2 = +(3,5) joined at R1."""
        v = view()
        p = PartialView.initial(v, 2, Delta.insert(R2, (3, 5)))
        p = p.extend(1, states()["R1"])
        assert (p.lo, p.hi) == (1, 2)
        assert p.delta.schema.attributes == ("A", "B", "C", "D")
        assert p.delta.count((1, 3, 3, 5)) == 1
        assert p.delta.count((2, 3, 3, 5)) == 1

    def test_right_extend(self):
        v = view()
        p = PartialView.initial(v, 2, Delta.insert(R2, (3, 5)))
        p = p.extend(1, states()["R1"]).extend(3, states()["R3"])
        assert p.complete
        assert p.delta.schema.attributes == ("A", "B", "C", "D", "E", "F")
        assert p.delta.count((1, 3, 3, 5, 5, 6)) == 1
        assert p.delta.count((2, 3, 3, 5, 5, 6)) == 1

    def test_canonical_order_after_left_extension(self):
        """Extending leftward must still yield columns in chain order."""
        v = view()
        p = PartialView.initial(v, 3, Delta.delete(R3, (7, 8)))
        p = p.extend(2, states()["R2"])
        assert p.delta.schema.attributes == ("C", "D", "E", "F")
        assert p.delta.count((3, 7, 7, 8)) == -1

    def test_non_adjacent_rejected(self):
        v = view()
        p = PartialView.initial(v, 1, Delta.insert(R1, (1, 3)))
        with pytest.raises(SchemaError):
            p.extend(3, states()["R3"])

    def test_already_covered_rejected(self):
        v = view()
        p = PartialView.initial(v, 2, Delta.insert(R2, (3, 5)))
        with pytest.raises(SchemaError):
            p.extend(2, states()["R2"])

    def test_wrong_contents_schema_rejected(self):
        v = view()
        p = PartialView.initial(v, 2, Delta.insert(R2, (3, 5)))
        with pytest.raises(SchemaError):
            p.extend(1, states()["R3"])

    def test_is_adjacent(self):
        v = view()
        p = PartialView.initial(v, 2, Delta.insert(R2, (3, 5)))
        assert p.is_adjacent(1) and p.is_adjacent(3)
        assert not p.is_adjacent(2)

    def test_sign_propagates_through_extension(self):
        v = view()
        p = PartialView.initial(v, 3, Delta.delete(R3, (7, 8)))
        p = p.extend(2, states()["R2"]).extend(1, states()["R1"])
        assert p.delta.count((1, 3, 3, 7, 7, 8)) == -1
        assert p.delta.count((2, 3, 3, 7, 7, 8)) == -1


class TestCompensate:
    def test_paper_compensation_step(self):
        """Section 5.2: answer from R1 compensated for concurrent -(2,3)."""
        v = view()
        temp = PartialView.initial(v, 2, Delta.insert(R2, (3, 5)))
        # Source already applied the delete, so it joins with R1 - (2,3):
        r1_new = Relation(R1, [(1, 3)])
        answer = temp.extend(1, r1_new)
        # Warehouse computes the error term locally from the queued update
        error = temp.extend(1, Delta.delete(R1, (2, 3)))
        compensated = answer.compensate(error)
        # -(error) adds the deleted derivation back: both rows present
        assert compensated.delta.count((1, 3, 3, 5)) == 1
        assert compensated.delta.count((2, 3, 3, 5)) == 1

    def test_range_mismatch_rejected(self):
        v = view()
        a = PartialView.initial(v, 2, Delta.insert(R2, (3, 5)))
        b = a.extend(1, states()["R1"])
        with pytest.raises(SchemaError):
            b.compensate(a)

    def test_add(self):
        v = view()
        a = PartialView.initial(v, 2, Delta.insert(R2, (3, 5)))
        b = PartialView.initial(v, 2, Delta.delete(R2, (3, 5)))
        assert len(a.add(b).delta) == 0

    def test_add_range_mismatch(self):
        v = view()
        a = PartialView.initial(v, 2, Delta.insert(R2, (3, 5)))
        b = PartialView.initial(v, 1, Delta.insert(R1, (1, 3)))
        with pytest.raises(SchemaError):
            a.add(b)


class TestComputeJoin:
    def test_source_service(self):
        v = view()
        p = PartialView.initial(v, 2, Delta.insert(R2, (3, 5)))
        out = compute_join(v, p, 1, states()["R1"])
        assert out.delta.total_count == 2

    def test_view_identity_checked(self):
        v1, v2 = view(), view()
        v2.name = "other"
        p = PartialView.initial(v1, 2, Delta.insert(R2, (3, 5)))
        with pytest.raises(SchemaError):
            compute_join(v2, p, 1, states()["R1"])


class TestEquivalenceWithRecompute:
    """A full sweep must equal the recomputed delta (no concurrency)."""

    @pytest.mark.parametrize("update_index,update_delta", [
        (1, ("insert", (9, 3))),
        (1, ("delete", (2, 3))),
        (2, ("insert", (3, 5))),
        (3, ("delete", (7, 8))),
    ])
    def test_sweep_matches_recompute(self, update_index, update_delta):
        v = view()
        st = states()
        kind, row = update_delta
        schema = v.schema_of(update_index)
        delta = (
            Delta.insert(schema, row) if kind == "insert" else Delta.delete(schema, row)
        )

        # Sweep left then right, as ViewChange does.
        p = PartialView.initial(v, update_index, delta)
        for j in range(update_index - 1, 0, -1):
            p = p.extend(j, st[v.name_of(j)])
        for j in range(update_index + 1, v.n_relations + 1):
            p = p.extend(j, st[v.name_of(j)])

        before = v.evaluate(st)
        new_states = {k: r.copy() for k, r in st.items()}
        new_states[v.name_of(update_index)].apply_delta(delta)
        after = v.evaluate(new_states)

        installed = before.copy()
        installed.apply_delta(v.finalize(p.delta))
        assert installed == after
