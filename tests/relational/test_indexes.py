"""Hash-index tests: correctness under mutation, parity with scans."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.algebra import join
from repro.relational.delta import Delta, delta_from_rows
from repro.relational.predicate import AttrEq
from repro.relational.relation import Relation
from repro.relational.schema import Schema

AB = Schema(("A", "B"))
CD = Schema(("C", "D"))


class TestIndexMaintenance:
    def test_create_on_existing_rows(self):
        r = Relation(CD, [(1, 10), (1, 20), (2, 30)])
        r.create_index(("C",))
        index = r.get_index((0,))
        assert index[(1,)] == {(1, 10), (1, 20)}
        assert index[(2,)] == {(2, 30)}

    def test_idempotent(self):
        r = Relation(CD, [(1, 10)])
        r.create_index(("C",))
        first = r.get_index((0,))
        r.create_index(("C",))
        assert r.get_index((0,)) is first

    def test_insert_updates_index(self):
        r = Relation(CD)
        r.create_index(("C",))
        r.insert((5, 50))
        assert r.get_index((0,))[(5,)] == {(5, 50)}

    def test_delete_updates_index(self):
        r = Relation(CD, [(5, 50), (5, 51)])
        r.create_index(("C",))
        r.delete((5, 50))
        assert r.get_index((0,))[(5,)] == {(5, 51)}
        r.delete((5, 51))
        assert (5,) not in r.get_index((0,))

    def test_multiplicity_changes_keep_index(self):
        r = Relation(CD, [(5, 50)])
        r.create_index(("C",))
        r.insert((5, 50), 3)  # count change, row stays
        r.delete((5, 50), 2)
        assert r.get_index((0,))[(5,)] == {(5, 50)}

    def test_composite_index(self):
        r = Relation(CD, [(1, 10), (1, 20)])
        r.create_index(("C", "D"))
        assert r.get_index((0, 1))[(1, 10)] == {(1, 10)}

    def test_copy_drops_indexes(self):
        r = Relation(CD, [(1, 10)])
        r.create_index(("C",))
        assert r.copy().get_index((0,)) is None

    def test_missing_index_is_none(self):
        assert Relation(CD).get_index((0,)) is None


class TestIndexedJoinParity:
    def test_indexed_join_equals_scan_join(self):
        rng = random.Random(5)
        plain = Relation(CD, {(rng.randrange(6), rng.randrange(100)): rng.randint(1, 3)
                              for _ in range(40)})
        indexed = Relation(CD, plain.as_dict())
        indexed.create_index(("C",))
        probe = delta_from_rows(AB, inserts=[(1, 2), (9, 4)], deletes=[(0, 5)])
        cond = AttrEq("B", "C")
        assert join(probe, indexed, cond) == join(probe, plain, cond)

    def test_index_on_left_side(self):
        left = Relation(AB, [(i, i % 3) for i in range(30)])
        left.create_index(("B",))
        probe = Delta(CD, {(1, 99): -2})
        cond = AttrEq("B", "C")
        plain = Relation(AB, left.as_dict())
        assert join(left, probe, cond) == join(plain, probe, cond)

    def test_index_after_mutations_still_correct(self):
        r = Relation(CD, [(1, 10), (2, 20)])
        r.create_index(("C",))
        r.apply_delta(delta_from_rows(CD, inserts=[(3, 30)], deletes=[(1, 10)]))
        probe = Delta(AB, {(0, 3): 1, (0, 1): 1})
        got = join(probe, r, AttrEq("B", "C"))
        assert got.as_dict() == {(0, 3, 3, 30): 1}

    @settings(max_examples=40, deadline=None)
    @given(
        st.dictionaries(
            st.tuples(st.integers(0, 4), st.integers(0, 4)),
            st.integers(1, 3), max_size=10,
        ),
        st.dictionaries(
            st.tuples(st.integers(0, 4), st.integers(0, 4)),
            st.integers(-2, 2).filter(bool), max_size=6,
        ),
    )
    def test_parity_property(self, base_rows, delta_rows):
        plain = Relation(CD, base_rows)
        indexed = Relation(CD, base_rows)
        indexed.create_index(("C",))
        probe = Delta(AB, delta_rows)
        cond = AttrEq("B", "C")
        assert join(probe, indexed, cond) == join(probe, plain, cond)
        # and with the relation as the probing side
        assert join(indexed, probe.negated(), cond) == join(
            plain, probe.negated(), cond
        )


class TestBackendIndexes:
    def test_memory_backend_indexes_join_columns(self, paper_view, paper_states):
        from repro.sources.memory import MemoryBackend

        backend = MemoryBackend(paper_view, 2, paper_states["R2"])
        # R2[C, D] participates via B=C and D=E: both columns indexed
        assert backend._relation.get_index((0,)) is not None  # C
        assert backend._relation.get_index((1,)) is not None  # D

    def test_indexed_run_matches_reference(self):
        """Whole-run equivalence: harness results are index-agnostic."""
        from repro.harness.config import ExperimentConfig
        from repro.harness.runner import run_experiment
        from repro.consistency.levels import ConsistencyLevel

        result = run_experiment(ExperimentConfig(
            algorithm="sweep", seed=8, n_sources=4, n_updates=20,
            mean_interarrival=1.0, latency=6.0, match_fraction=1.0,
        ))
        assert result.classified_level == ConsistencyLevel.COMPLETE
