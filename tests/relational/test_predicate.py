"""Unit tests for the predicate expression trees."""

import pytest

from repro.relational.errors import UnknownAttributeError
from repro.relational.predicate import (
    And,
    AttrCompare,
    AttrEq,
    Const,
    Not,
    Or,
    TruePredicate,
    conjunction,
)
from repro.relational.schema import Schema

S = Schema(("A", "B", "C"))


def holds(pred, row, schema=S):
    return pred.compile(schema)(row)


class TestLeaves:
    def test_true_predicate(self):
        assert holds(TruePredicate(), (1, 2, 3))
        assert TruePredicate().attributes() == frozenset()

    def test_const(self):
        assert holds(Const(True), (0, 0, 0))
        assert not holds(Const(False), (0, 0, 0))

    def test_attr_eq(self):
        p = AttrEq("A", "B")
        assert holds(p, (5, 5, 0))
        assert not holds(p, (5, 6, 0))
        assert p.attributes() == frozenset({"A", "B"})

    def test_attr_eq_symmetric_equality(self):
        assert AttrEq("A", "B") == AttrEq("B", "A")
        assert hash(AttrEq("A", "B")) == hash(AttrEq("B", "A"))

    def test_attr_compare_all_ops(self):
        assert holds(AttrCompare("A", "==", 1), (1, 0, 0))
        assert holds(AttrCompare("A", "!=", 1), (2, 0, 0))
        assert holds(AttrCompare("A", "<", 1), (0, 0, 0))
        assert holds(AttrCompare("A", "<=", 1), (1, 0, 0))
        assert holds(AttrCompare("A", ">", 1), (2, 0, 0))
        assert holds(AttrCompare("A", ">=", 1), (1, 0, 0))

    def test_attr_compare_bad_op(self):
        with pytest.raises(ValueError):
            AttrCompare("A", "~", 1)

    def test_unknown_attribute_raises_at_compile(self):
        p = AttrEq("A", "Z")
        with pytest.raises(UnknownAttributeError):
            p.compile(S)


class TestCombinators:
    def test_and(self):
        p = And(AttrCompare("A", ">", 0), AttrCompare("B", ">", 0))
        assert holds(p, (1, 1, 0))
        assert not holds(p, (1, 0, 0))

    def test_or(self):
        p = Or(AttrCompare("A", ">", 0), AttrCompare("B", ">", 0))
        assert holds(p, (0, 1, 0))
        assert not holds(p, (0, 0, 0))

    def test_not(self):
        p = Not(AttrCompare("A", "==", 1))
        assert holds(p, (2, 0, 0))
        assert not holds(p, (1, 0, 0))

    def test_operator_sugar(self):
        p = AttrCompare("A", ">", 0) & AttrCompare("B", ">", 0)
        assert isinstance(p, And)
        q = AttrCompare("A", ">", 0) | AttrCompare("B", ">", 0)
        assert isinstance(q, Or)
        assert isinstance(~q, Not)

    def test_and_or_require_two_parts(self):
        with pytest.raises(ValueError):
            And(Const(True))
        with pytest.raises(ValueError):
            Or(Const(True))

    def test_conjuncts_flatten_nested_and(self):
        p = And(And(AttrEq("A", "B"), Const(True)), AttrCompare("C", ">", 0))
        parts = list(p.conjuncts())
        assert len(parts) == 3

    def test_attributes_union(self):
        p = And(AttrEq("A", "B"), AttrCompare("C", ">", 0))
        assert p.attributes() == frozenset({"A", "B", "C"})


class TestConjunctionBuilder:
    def test_empty_is_true(self):
        assert isinstance(conjunction([]), TruePredicate)

    def test_singleton_unwrapped(self):
        p = AttrEq("A", "B")
        assert conjunction([p]) is p

    def test_true_parts_dropped(self):
        p = AttrEq("A", "B")
        assert conjunction([TruePredicate(), p]) is p

    def test_multiple(self):
        c = conjunction([AttrEq("A", "B"), AttrCompare("C", ">", 0)])
        assert isinstance(c, And)


class TestReprAndEquality:
    def test_reprs_stable(self):
        assert repr(AttrEq("A", "B")) == "(A == B)"
        assert "AND" in repr(And(Const(True), Const(False)))
        assert "OR" in repr(Or(Const(True), Const(False)))
        assert "NOT" in repr(Not(Const(True)))

    def test_equality_by_structure(self):
        assert And(AttrEq("A", "B"), Const(True)) == And(AttrEq("A", "B"), Const(True))
        assert Not(Const(True)) == Not(Const(True))
        assert Or(Const(True), Const(False)) != Or(Const(False), Const(True))
