"""Unit tests for Relation (non-negative bags) and Delta (signed bags)."""

import pytest

from repro.relational.delta import Delta, delta_from_rows, merge_deltas
from repro.relational.errors import (
    ArityError,
    HeterogeneousSchemaError,
    NegativeCountError,
)
from repro.relational.relation import Relation
from repro.relational.schema import Schema

AB = Schema(("A", "B"))


class TestRelationBasics:
    def test_empty(self):
        r = Relation(AB)
        assert len(r) == 0
        assert not r
        assert r.total_count == 0

    def test_from_rows(self):
        r = Relation(AB, [(1, 2), (1, 2), (3, 4)])
        assert r.count((1, 2)) == 2
        assert r.count((3, 4)) == 1
        assert r.distinct_count == 2
        assert r.total_count == 3

    def test_from_mapping(self):
        r = Relation(AB, {(1, 2): 5})
        assert r.count((1, 2)) == 5

    def test_insert_delete_roundtrip(self):
        r = Relation(AB)
        r.insert((1, 2), 3)
        r.delete((1, 2), 2)
        assert r.count((1, 2)) == 1
        r.delete((1, 2))
        assert (1, 2) not in r

    def test_delete_missing_raises(self):
        r = Relation(AB)
        with pytest.raises(NegativeCountError):
            r.delete((9, 9))

    def test_over_delete_raises(self):
        r = Relation(AB, [(1, 2)])
        with pytest.raises(NegativeCountError):
            r.delete((1, 2), 2)

    def test_insert_nonpositive_count_rejected(self):
        r = Relation(AB)
        with pytest.raises(ValueError):
            r.insert((1, 2), 0)
        with pytest.raises(ValueError):
            r.delete((1, 2), -1)

    def test_arity_enforced(self):
        r = Relation(AB)
        with pytest.raises(ArityError):
            r.insert((1, 2, 3))

    def test_rows_are_normalized_to_tuples(self):
        r = Relation(AB)
        r.insert([1, 2])
        assert r.count((1, 2)) == 1
        assert (1, 2) in r

    def test_equality(self):
        assert Relation(AB, [(1, 2)]) == Relation(AB, {(1, 2): 1})
        assert Relation(AB, [(1, 2)]) != Relation(AB, [(1, 3)])

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(Relation(AB))

    def test_copy_is_independent(self):
        r = Relation(AB, [(1, 2)])
        c = r.copy()
        c.insert((1, 2))
        assert r.count((1, 2)) == 1
        assert c.count((1, 2)) == 2

    def test_pretty_contains_counts(self):
        r = Relation(AB, {(7, 8): 2})
        text = r.pretty()
        assert "A | B" in text
        assert "[2]" in text

    def test_pretty_empty(self):
        assert "(empty)" in Relation(AB).pretty()


class TestApplyDelta:
    def test_apply_insert_and_delete(self):
        view = Relation(AB, {(7, 8): 2})
        d = delta_from_rows(AB, inserts=[(5, 6), (5, 6)], deletes=[(7, 8)])
        view.apply_delta(d)
        assert view.count((5, 6)) == 2
        assert view.count((7, 8)) == 1

    def test_apply_is_atomic_on_failure(self):
        view = Relation(AB, {(7, 8): 1})
        bad = delta_from_rows(AB, inserts=[(5, 6)], deletes=[(9, 9)])
        with pytest.raises(NegativeCountError):
            view.apply_delta(bad)
        # nothing applied
        assert view == Relation(AB, {(7, 8): 1})

    def test_apply_schema_mismatch(self):
        view = Relation(AB)
        with pytest.raises(HeterogeneousSchemaError):
            view.apply_delta(Delta(Schema(("X", "Y"))))


class TestDelta:
    def test_signed_counts(self):
        d = Delta(AB)
        d.add((1, 2), -3)
        assert d.count((1, 2)) == -3
        assert d.total_count == -3

    def test_zero_rows_dropped(self):
        d = Delta(AB)
        d.add((1, 2), 2)
        d.add((1, 2), -2)
        assert len(d) == 0

    def test_insert_delete_constructors(self):
        ins = Delta.insert(AB, (3, 5))
        dele = Delta.delete(AB, (7, 8))
        assert ins.count((3, 5)) == 1
        assert dele.count((7, 8)) == -1
        with pytest.raises(ValueError):
            Delta.insert(AB, (1, 1), 0)
        with pytest.raises(ValueError):
            Delta.delete(AB, (1, 1), -2)

    def test_negated(self):
        d = delta_from_rows(AB, inserts=[(1, 2)], deletes=[(3, 4)])
        n = d.negated()
        assert n.count((1, 2)) == -1
        assert n.count((3, 4)) == 1

    def test_merged(self):
        a = Delta.insert(AB, (1, 2))
        b = Delta.delete(AB, (1, 2))
        assert len(a.merged(b)) == 0

    def test_merged_schema_mismatch(self):
        with pytest.raises(HeterogeneousSchemaError):
            Delta(AB).merged(Delta(Schema(("X", "Y"))))

    def test_merge_deltas(self):
        parts = [
            Delta.insert(AB, (1, 2)),
            Delta.insert(AB, (1, 2)),
            Delta.delete(AB, (1, 2)),
        ]
        total = merge_deltas(AB, parts)
        assert total.count((1, 2)) == 1

    def test_positive_negative_parts(self):
        d = delta_from_rows(AB, inserts=[(1, 2)], deletes=[(3, 4)])
        assert d.positive_part() == Relation(AB, [(1, 2)])
        assert d.negative_part() == Relation(AB, [(3, 4)])

    def test_insert_delete_only_flags(self):
        assert Delta.insert(AB, (1, 2)).is_insert_only
        assert Delta.delete(AB, (1, 2)).is_delete_only
        mixed = delta_from_rows(AB, inserts=[(1, 2)], deletes=[(3, 4)])
        assert not mixed.is_insert_only
        assert not mixed.is_delete_only

    def test_from_relation(self):
        r = Relation(AB, {(1, 2): 3})
        d = Delta.from_relation(r)
        assert d.count((1, 2)) == 3
        d.add((1, 2), -1)
        assert r.count((1, 2)) == 3  # copy, not a view

    def test_empty_constructor(self):
        assert len(Delta.empty(AB)) == 0

    def test_copy(self):
        d = Delta.insert(AB, (1, 2))
        c = d.copy()
        c.add((1, 2), 1)
        assert d.count((1, 2)) == 1
