"""Unit tests for repro.relational.schema."""

import pytest

from repro.relational.errors import SchemaError, UnknownAttributeError
from repro.relational.schema import Schema


class TestConstruction:
    def test_basic(self):
        s = Schema(("A", "B"))
        assert s.attributes == ("A", "B")
        assert len(s) == 2
        assert list(s) == ["A", "B"]

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            Schema(())

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(SchemaError):
            Schema(("A", "A"))

    def test_key_subset(self):
        s = Schema(("A", "B"), key=("A",))
        assert s.key == ("A",)

    def test_key_must_exist(self):
        with pytest.raises(SchemaError):
            Schema(("A", "B"), key=("Z",))

    def test_duplicate_key_rejected(self):
        with pytest.raises(SchemaError):
            Schema(("A", "B"), key=("A", "A"))

    def test_accepts_list_input(self):
        s = Schema(["A", "B"], key=["B"])
        assert s.attributes == ("A", "B")
        assert s.key == ("B",)


class TestLookup:
    def test_index_of(self):
        s = Schema(("A", "B", "C"))
        assert s.index_of("A") == 0
        assert s.index_of("C") == 2

    def test_index_of_unknown(self):
        s = Schema(("A",))
        with pytest.raises(UnknownAttributeError) as exc:
            s.index_of("Z")
        assert exc.value.attribute == "Z"

    def test_contains(self):
        s = Schema(("A", "B"))
        assert "A" in s
        assert "Z" not in s

    def test_project_indices(self):
        s = Schema(("A", "B", "C"))
        assert s.project_indices(["C", "A"]) == (2, 0)

    def test_project_indices_unknown(self):
        s = Schema(("A",))
        with pytest.raises(UnknownAttributeError):
            s.project_indices(["B"])


class TestDerivation:
    def test_concat(self):
        left = Schema(("A", "B"), key=("A",))
        right = Schema(("C", "D"), key=("C",))
        both = left.concat(right)
        assert both.attributes == ("A", "B", "C", "D")
        assert both.key == ("A", "C")

    def test_concat_overlap_rejected(self):
        with pytest.raises(SchemaError):
            Schema(("A", "B")).concat(Schema(("B", "C")))

    def test_project(self):
        s = Schema(("A", "B", "C"), key=("A", "B"))
        p = s.project(("B", "C"))
        assert p.attributes == ("B", "C")
        assert p.key == ("B",)

    def test_project_validates_names(self):
        with pytest.raises(UnknownAttributeError):
            Schema(("A",)).project(("Z",))

    def test_without_key(self):
        s = Schema(("A", "B"), key=("A",))
        assert s.without_key().key == ()


class TestValueProtocol:
    def test_equality_ignores_key(self):
        assert Schema(("A", "B"), key=("A",)) == Schema(("A", "B"))

    def test_inequality(self):
        assert Schema(("A", "B")) != Schema(("B", "A"))

    def test_hash_consistent(self):
        assert hash(Schema(("A",))) == hash(Schema(("A",)))

    def test_repr_includes_key(self):
        assert "key" in repr(Schema(("A",), key=("A",)))
        assert "key" not in repr(Schema(("A",)))
