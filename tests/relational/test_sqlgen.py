"""Unit tests for SQL generation (sqlite source backend plumbing)."""

import sqlite3

import pytest

from repro.relational import sqlgen
from repro.relational.predicate import (
    And,
    AttrCompare,
    AttrEq,
    Const,
    Not,
    Or,
    Predicate,
    TruePredicate,
)
from repro.relational.schema import Schema

AB = Schema(("A", "B"))


class TestIdentifiers:
    def test_quote_plain(self):
        assert sqlgen.quote_ident("R1") == '"R1"'

    def test_quote_dotted(self):
        assert sqlgen.quote_ident("orders.id") == '"orders.id"'

    def test_quote_embedded_quotes(self):
        assert sqlgen.quote_ident('we"ird') == '"we""ird"'


class TestDdl:
    def test_create_table(self):
        sql = sqlgen.create_table_sql("R1", AB)
        conn = sqlite3.connect(":memory:")
        conn.execute(sql)  # must be valid DDL
        cols = [r[1] for r in conn.execute("PRAGMA table_info(R1)")]
        assert cols == ["A", "B", "_count"]
        conn.close()

    def test_temp_table(self):
        conn = sqlite3.connect(":memory:")
        conn.execute(sqlgen.create_temp_table_sql("_dv", AB))
        conn.execute(sqlgen.insert_rows_sql("_dv", AB), (1, 2, 3))
        rows = conn.execute(sqlgen.select_all_sql("_dv", AB)).fetchall()
        assert rows == [(1, 2, 3)]
        conn.close()

    def test_upsert_accumulates(self):
        conn = sqlite3.connect(":memory:")
        conn.execute(sqlgen.create_table_sql("R1", AB))
        for count in (2, 3):
            conn.execute(sqlgen.upsert_count_sql("R1", AB), (1, 2, count))
        rows = conn.execute(sqlgen.select_all_sql("R1", AB)).fetchall()
        assert rows == [(1, 2, 5)]
        conn.close()

    def test_prune_zero(self):
        conn = sqlite3.connect(":memory:")
        conn.execute(sqlgen.create_table_sql("R1", AB))
        conn.execute(sqlgen.insert_rows_sql("R1", AB), (1, 2, 0))
        conn.execute(sqlgen.prune_zero_sql("R1"))
        assert conn.execute("SELECT COUNT(*) FROM R1").fetchone()[0] == 0
        conn.close()

    def test_drop_if_exists(self):
        conn = sqlite3.connect(":memory:")
        conn.execute(sqlgen.drop_table_sql("nothere"))  # no error
        conn.close()


class TestPredicateCompilation:
    def compile(self, pred):
        params = []
        sql = sqlgen.predicate_to_sql(
            pred, lambda a: f"t.{sqlgen.quote_ident(a)}", params
        )
        return sql, params

    def test_true(self):
        assert self.compile(TruePredicate()) == ("1", [])

    def test_const(self):
        assert self.compile(Const(True))[0] == "1"
        assert self.compile(Const(False))[0] == "0"

    def test_attr_eq(self):
        sql, params = self.compile(AttrEq("A", "B"))
        assert sql == 't."A" = t."B"'
        assert params == []

    def test_attr_compare_binds_value(self):
        sql, params = self.compile(AttrCompare("A", ">=", 10))
        assert sql == 't."A" >= ?'
        assert params == [10]

    def test_equality_and_inequality_operators(self):
        assert self.compile(AttrCompare("A", "==", 1))[0] == 't."A" = ?'
        assert self.compile(AttrCompare("A", "!=", 1))[0] == 't."A" <> ?'

    def test_boolean_combinators(self):
        sql, params = self.compile(
            And(AttrEq("A", "B"), Or(AttrCompare("A", "<", 5), Not(Const(False))))
        )
        assert "AND" in sql and "OR" in sql and "NOT" in sql
        assert params == [5]

    def test_unsupported_node(self):
        class Weird(Predicate):
            def compile(self, schema):
                return lambda row: True

            def attributes(self):
                return frozenset()

        with pytest.raises(sqlgen.UnsupportedPredicateError):
            self.compile(Weird())


class TestJoinSql:
    def test_join_partial_sql_round_trip(self):
        """Execute the generated ComputeJoin SQL against real tables."""
        cd = Schema(("C", "D"))
        conn = sqlite3.connect(":memory:")
        conn.execute(sqlgen.create_table_sql("R2", cd))
        conn.execute(sqlgen.insert_rows_sql("R2", cd), (3, 7, 2))
        conn.execute(sqlgen.create_temp_table_sql("_dv", AB))
        conn.execute(sqlgen.insert_rows_sql("_dv", AB), (1, 3, -1))

        sql, params = sqlgen.join_partial_sql(
            base_table="R2",
            base_schema=cd,
            partial_table="_dv",
            partial_attrs=("A", "B"),
            condition=AttrEq("B", "C"),
            output_attrs=("A", "B", "C", "D"),
        )
        rows = conn.execute(sql, params).fetchall()
        assert rows == [(1, 3, 3, 7, -2)]  # counts multiplied: -1 * 2
        conn.close()

    def test_unknown_attr_rejected(self):
        with pytest.raises(sqlgen.UnsupportedPredicateError):
            sqlgen.join_partial_sql(
                base_table="R2",
                base_schema=Schema(("C", "D")),
                partial_table="_dv",
                partial_attrs=("A", "B"),
                condition=AttrEq("B", "C"),
                output_attrs=("Z",),
            )
