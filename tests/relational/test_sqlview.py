"""SQL view parser tests, anchored on the paper's Section 5.2 query."""

import pytest

from repro.relational.predicate import AttrCompare, AttrEq
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.sqlview import SqlParseError, parse_view

CATALOG = {
    "R1": Schema(("A", "B")),
    "R2": Schema(("C", "D")),
    "R3": Schema(("E", "F")),
}

PAPER_SQL = "SELECT R2.D, R3.F WHERE R1.B = R2.C AND R2.D = R3.E"


class TestPaperQuery:
    def test_parses_to_paper_view(self, paper_view):
        view = parse_view(PAPER_SQL, CATALOG, name="V")
        assert view.relation_names == ("R1", "R2", "R3")
        assert view.projection == ("D", "F")
        assert set(view.join_conditions) == {AttrEq("B", "C"), AttrEq("D", "E")}

    def test_evaluates_like_paper_view(self, paper_view, paper_states):
        view = parse_view(PAPER_SQL, CATALOG)
        assert view.evaluate(paper_states) == paper_view.evaluate(paper_states)

    def test_usable_in_a_sweep_run(self, paper_states):
        from repro.harness.config import ExperimentConfig
        from repro.harness.runner import run_experiment
        from repro.workloads.paper_example import paper_example_updates
        from repro.workloads.scenarios import Workload
        from repro.consistency.levels import ConsistencyLevel

        view = parse_view(PAPER_SQL, CATALOG)
        workload = Workload(
            view=view,
            initial_states=paper_states,
            schedules=paper_example_updates(spacing=0.5),
        )
        result = run_experiment(
            ExperimentConfig(algorithm="sweep", workload=workload,
                             n_sources=3, latency=5.0)
        )
        assert result.classified_level == ConsistencyLevel.COMPLETE


class TestClauses:
    def test_select_star(self):
        view = parse_view("SELECT * WHERE R1.B = R2.C", CATALOG)
        assert view.projection is None
        assert view.relation_names == ("R1", "R2")

    def test_from_clause_sets_order(self):
        view = parse_view(
            "SELECT R2.D FROM R2, R1 WHERE R1.B = R2.C", CATALOG
        )
        assert view.relation_names == ("R2", "R1")

    def test_relation_order_override(self):
        view = parse_view(
            PAPER_SQL, CATALOG, relation_order=("R1", "R2", "R3")
        )
        assert view.relation_names == ("R1", "R2", "R3")

    def test_no_where(self):
        view = parse_view("SELECT A FROM R1", CATALOG)
        assert view.join_conditions == ()

    def test_unqualified_attributes_resolve(self):
        view = parse_view("SELECT D, F WHERE B = C AND D = E", CATALOG)
        assert view.projection == ("D", "F")
        assert set(view.join_conditions) == {AttrEq("B", "C"), AttrEq("D", "E")}

    def test_literal_selections(self):
        view = parse_view(
            "SELECT * WHERE R1.B = R2.C AND R1.A >= 5 AND R2.D <> 7",
            CATALOG,
        )
        conjs = set(view.selection.conjuncts())
        assert AttrCompare("A", ">=", 5) in conjs
        assert AttrCompare("D", "!=", 7) in conjs

    def test_flipped_literal_comparison(self):
        view = parse_view("SELECT * FROM R1 WHERE 5 < R1.A", CATALOG)
        assert AttrCompare("A", ">", 5) in set(view.selection.conjuncts())

    def test_string_and_float_literals(self):
        catalog = {"S": Schema(("name", "score"))}
        view = parse_view(
            "SELECT * FROM S WHERE name = 'o''brien' AND score >= 1.5",
            catalog,
        )
        conjs = set(view.selection.conjuncts())
        assert AttrCompare("name", "==", "o'brien") in conjs
        assert AttrCompare("score", ">=", 1.5) in conjs

    def test_same_relation_equality_is_selection(self):
        catalog = {"S": Schema(("x", "y"))}
        view = parse_view("SELECT * FROM S WHERE S.x = S.y", catalog)
        assert view.join_conditions == ()
        assert AttrEq("x", "y") in set(view.selection.conjuncts())

    def test_parse_then_evaluate_selection(self):
        catalog = {"S": Schema(("x", "y"))}
        view = parse_view("SELECT * FROM S WHERE x = y AND x > 1", catalog)
        data = {"S": Relation(catalog["S"], [(1, 1), (2, 2), (2, 3)])}
        assert view.evaluate(data).as_dict() == {(2, 2): 1}


class TestErrors:
    @pytest.mark.parametrize("sql,fragment", [
        ("SELECT R9.A WHERE R1.B = R2.C", "unknown relation"),
        ("SELECT R1.Z", "no attribute"),
        ("SELECT Q", "unknown attribute"),
        ("SELECT R2.D WHERE R1.B < R2.C", "only equality"),
        ("SELECT R2.D WHERE 1 = 2", "two literals"),
        ("SELECT R2.D WHERE R1.B = R2.C OR R2.D = R3.E", "unsupported construct"),
        ("SELECT R2.D WHERE NOT R1.B = R2.C", "not supported"),
        ("SELECT R2.D WHERE R1.B =", "unexpected end"),
        ("SELECT R2.D FROM R9", "unknown relation"),
        ("SELWHAT R2.D", "expected SELECT"),
        ("SELECT R2.D WHERE R1.B ? R2.C", "unexpected character"),
    ])
    def test_clear_messages(self, sql, fragment):
        with pytest.raises(SqlParseError) as exc:
            parse_view(sql, CATALOG)
        assert fragment.lower() in str(exc.value).lower()

    def test_ambiguous_unqualified(self):
        catalog = {"S": Schema(("x",)), "T": Schema(("x",))}
        with pytest.raises(SqlParseError) as exc:
            parse_view("SELECT x FROM S, T", catalog)
        assert "ambiguous" in str(exc.value)

    def test_relation_order_must_cover_referenced(self):
        with pytest.raises(SqlParseError):
            parse_view(PAPER_SQL, CATALOG, relation_order=("R1", "R2"))

    def test_relation_order_unknown_name(self):
        with pytest.raises(SqlParseError):
            parse_view(PAPER_SQL, CATALOG, relation_order=("R1", "R2", "R9"))
