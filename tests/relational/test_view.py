"""Unit tests for ViewDefinition, built around the paper's Section 5.2 view."""

import pytest

from repro.relational.errors import SchemaError
from repro.relational.predicate import AttrCompare, AttrEq, TruePredicate
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.view import ViewDefinition


def paper_view(projection=("D", "F")):
    """V = pi_[D,F] (R1[A,B] |><|_{B=C} R2[C,D] |><|_{D=E} R3[E,F])."""
    return ViewDefinition(
        name="V",
        relation_names=("R1", "R2", "R3"),
        schemas=(Schema(("A", "B")), Schema(("C", "D")), Schema(("E", "F"))),
        join_conditions=(AttrEq("B", "C"), AttrEq("D", "E")),
        projection=projection,
    )


def paper_states():
    return {
        "R1": Relation(Schema(("A", "B")), [(1, 3), (2, 3)]),
        "R2": Relation(Schema(("C", "D")), [(3, 7)]),
        "R3": Relation(Schema(("E", "F")), [(5, 6), (7, 8)]),
    }


class TestConstruction:
    def test_basic_properties(self):
        v = paper_view()
        assert v.n_relations == 3
        assert v.name_of(2) == "R2"
        assert v.index_of_name("R3") == 3
        assert v.wide_schema.attributes == ("A", "B", "C", "D", "E", "F")
        assert v.view_schema.attributes == ("D", "F")

    def test_mismatched_lengths(self):
        with pytest.raises(SchemaError):
            ViewDefinition("V", ("R1",), (Schema(("A",)), Schema(("B",))))

    def test_duplicate_relation_names(self):
        with pytest.raises(SchemaError):
            ViewDefinition("V", ("R", "R"), (Schema(("A",)), Schema(("B",))))

    def test_no_relations(self):
        with pytest.raises(SchemaError):
            ViewDefinition("V", (), ())

    def test_single_relation_condition_rejected(self):
        with pytest.raises(SchemaError):
            ViewDefinition(
                "V",
                ("R1", "R2"),
                (Schema(("A", "B")), Schema(("C",))),
                join_conditions=(AttrEq("A", "B"),),
            )

    def test_projection_attr_must_exist(self):
        with pytest.raises(SchemaError):
            paper_view(projection=("Z",))

    def test_empty_projection_rejected(self):
        with pytest.raises(SchemaError):
            paper_view(projection=())

    def test_selection_attr_must_exist(self):
        with pytest.raises(SchemaError):
            ViewDefinition(
                "V",
                ("R1",),
                (Schema(("A",)),),
                selection=AttrCompare("Z", ">", 0),
            )

    def test_index_bounds(self):
        v = paper_view()
        with pytest.raises(IndexError):
            v.schema_of(0)
        with pytest.raises(IndexError):
            v.schema_of(4)

    def test_unknown_relation_name(self):
        with pytest.raises(SchemaError):
            paper_view().index_of_name("R9")

    def test_attr_owner(self):
        v = paper_view()
        assert v.relation_index_of_attr("A") == 1
        assert v.relation_index_of_attr("F") == 3
        with pytest.raises(SchemaError):
            v.relation_index_of_attr("Z")


class TestConditionPlanning:
    def test_condition_fires_when_adjacent(self):
        v = paper_view()
        cond = v.conditions_joining(1, frozenset({2}))
        assert cond == AttrEq("B", "C")

    def test_condition_waits_for_all_relations(self):
        v = paper_view()
        # extending {3} by 1: the B=C condition needs relation 2, absent
        cond = v.conditions_joining(1, frozenset({3}))
        assert isinstance(cond, TruePredicate)

    def test_multiple_conditions_combine(self):
        v = ViewDefinition(
            "V",
            ("R1", "R2"),
            (Schema(("A", "B")), Schema(("C", "D"))),
            join_conditions=(AttrEq("A", "C"), AttrEq("B", "D")),
        )
        cond = v.conditions_joining(2, frozenset({1}))
        assert set(cond.conjuncts()) == {AttrEq("A", "C"), AttrEq("B", "D")}

    def test_chain_connectivity_ok(self):
        paper_view().validate_chain_connectivity()

    def test_chain_connectivity_detects_gap(self):
        v = ViewDefinition(
            "V",
            ("R1", "R2", "R3"),
            (Schema(("A", "B")), Schema(("C", "D")), Schema(("E", "F"))),
            join_conditions=(AttrEq("B", "C"),),  # R3 dangling
        )
        with pytest.raises(SchemaError):
            v.validate_chain_connectivity()


class TestPartialSchemas:
    def test_wide_schema_range(self):
        v = paper_view()
        assert v.wide_schema_range(2, 3).attributes == ("C", "D", "E", "F")
        assert v.wide_schema_range(1, 1).attributes == ("A", "B")

    def test_empty_range_rejected(self):
        with pytest.raises(IndexError):
            paper_view().wide_schema_range(3, 2)


class TestKeyAssumption:
    def test_paper_view_lacks_keys(self):
        assert not paper_view().projection_keeps_all_keys()

    def test_key_preserving_view(self):
        v = ViewDefinition(
            "V",
            ("R1", "R2"),
            (Schema(("A", "B"), key=("A",)), Schema(("C", "D"), key=("C",))),
            join_conditions=(AttrEq("B", "C"),),
            projection=("A", "C", "D"),
        )
        assert v.projection_keeps_all_keys()
        assert v.key_indices_in_view(1) == (0,)
        assert v.key_indices_in_view(2) == (1,)

    def test_projection_dropping_key_detected(self):
        v = ViewDefinition(
            "V",
            ("R1", "R2"),
            (Schema(("A", "B"), key=("A",)), Schema(("C", "D"), key=("C",))),
            join_conditions=(AttrEq("B", "C"),),
            projection=("A", "D"),
        )
        assert not v.projection_keeps_all_keys()


class TestEvaluation:
    def test_paper_initial_state(self):
        """Figure 5: the initial warehouse state is {(7,8)[2]}."""
        v = paper_view()
        result = v.evaluate(paper_states())
        assert result == Relation(Schema(("D", "F")), {(7, 8): 2})

    def test_paper_final_state(self):
        """Figure 5: after all three updates, V = {(5,6)[1]}."""
        v = paper_view()
        states = paper_states()
        states["R2"].insert((3, 5))
        states["R3"].delete((7, 8))
        states["R1"].delete((2, 3))
        result = v.evaluate(states)
        assert result == Relation(Schema(("D", "F")), {(5, 6): 1})

    def test_intermediate_states_match_figure5(self):
        v = paper_view()
        states = paper_states()
        dv = Schema(("D", "F"))

        states["R2"].insert((3, 5))
        assert v.evaluate(states) == Relation(dv, {(5, 6): 2, (7, 8): 2})

        states["R3"].delete((7, 8))
        assert v.evaluate(states) == Relation(dv, {(5, 6): 2})

    def test_no_projection_returns_wide(self):
        v = paper_view(projection=None)
        result = v.evaluate(paper_states())
        assert result.schema.attributes == ("A", "B", "C", "D", "E", "F")
        assert result.total_count == 2

    def test_selection_applied(self):
        v = ViewDefinition(
            "V",
            ("R1", "R2", "R3"),
            (Schema(("A", "B")), Schema(("C", "D")), Schema(("E", "F"))),
            join_conditions=(AttrEq("B", "C"), AttrEq("D", "E")),
            selection=AttrCompare("A", "==", 1),
            projection=("D", "F"),
        )
        result = v.evaluate(paper_states())
        assert result == Relation(Schema(("D", "F")), {(7, 8): 1})

    def test_evaluate_wide_canonical_order(self):
        v = paper_view()
        wide = v.evaluate_wide(paper_states())
        assert wide.schema.attributes == v.wide_schema.attributes

    def test_repr_mentions_parts(self):
        text = repr(paper_view())
        assert "R1" in text and "project" in text
