"""Randomized batched-vs-per-update SWEEP equivalence on real transports.

The batched sweep scheduler drains the pending queue into one composite
sweep per batch.  Because every batch is a delivery-order prefix of the
update stream, the final view must be *identical* to what per-update
SWEEP computes for the same seeded workload, and the oracle must classify
the run as strongly consistent or better -- on the in-process transport
and over loopback TCP alike.

Each seed draws a different workload shape (source count, update count,
arrival density) and a different ``batch_max`` cap, including the
``batch_max=1`` degeneracy where every batch holds a single update and
the composite sweep must collapse to plain SWEEP behaviour.
"""

import random

import pytest

from repro.consistency.levels import ConsistencyLevel
from repro.harness.config import ExperimentConfig
from repro.harness.runner import run_experiment
from repro.runtime import run_distributed

#: >= 50 seeded interleavings, split across both transports per seed.
SEEDS = range(25)
BATCH_CAPS = (0, 1, 2, 5)  # 0 = unbounded drain


def workload_for(seed: int, algorithm: str) -> ExperimentConfig:
    """A seed-derived workload; same shape for reference and batched runs."""
    rng = random.Random(10_000 + seed)
    return ExperimentConfig(
        algorithm=algorithm,
        n_sources=rng.choice((3, 4)),
        n_updates=rng.randint(6, 14),
        seed=seed,
        mean_interarrival=rng.choice((0.5, 1.0, 2.0)),
        batch_max=BATCH_CAPS[seed % len(BATCH_CAPS)],
    )


def reference_view(seed: int):
    """Per-update SWEEP on the simulator: the complete-consistency oracle."""
    config = workload_for(seed, "sweep")
    result = run_experiment(config)
    assert result.classified_level == ConsistencyLevel.COMPLETE
    return result.final_view


@pytest.mark.parametrize("transport", ["local", "tcp"])
@pytest.mark.parametrize("seed", SEEDS)
def test_batched_sweep_matches_per_update_sweep(seed, transport):
    config = workload_for(seed, "batched-sweep")
    batched = run_distributed(
        config, transport=transport, time_scale=0.0002, timeout=60.0
    )

    assert batched.recorder.updates_delivered == config.n_updates
    assert batched.final_view == reference_view(seed)

    # The oracle verdict: batches are delivery-order prefixes, so the
    # scheduler must never fall below strong consistency.
    assert batched.consistency[ConsistencyLevel.STRONG].ok
    assert batched.classified_level >= ConsistencyLevel.STRONG


def test_batch_cap_one_is_per_update_sweep():
    """``batch_max=1`` degenerates to one install per update."""
    config = workload_for(1, "batched-sweep")  # seed 1 -> batch_max == 1
    assert config.batch_max == 1
    result = run_distributed(
        config, transport="local", time_scale=0.0002, timeout=60.0
    )
    assert result.metrics.counters["installs"] == config.n_updates
    assert result.metrics.counters["updates_installed"] == config.n_updates


def test_saturated_sweep_installs_every_update():
    """Quiescence regression: a run must not be declared finished while
    updates still sit in the warehouse's internal queue.

    With arrivals compressed far below processing speed the pending queue
    is never empty; before warehouses exposed ``pending_work()`` the
    distributed driver could observe all processes blocked mid-backlog
    and stop early, silently dropping installs.
    """
    config = ExperimentConfig(
        algorithm="sweep",
        n_sources=3,
        n_updates=30,
        seed=3,
        mean_interarrival=0.05,
    )
    result = run_distributed(
        config, transport="local", time_scale=0.0001, timeout=60.0
    )
    assert result.metrics.counters["updates_installed"] == 30
    assert result.classified_level == ConsistencyLevel.COMPLETE
