"""The binary serialization kernel, and every message type through it.

Two layers of coverage:

* kernel contract -- :mod:`repro.runtime.binwire` round-trips exactly
  the JSON value model (fuzzed against ``json`` itself), rejects what
  JSON would reject, and fails loudly on truncated or trailing bytes;
* transport matrix -- every protocol payload type crosses a real frame
  (``write_frame``/``read_frame`` through an ``asyncio.StreamReader``)
  under codec v1/v2/v3 with compression off and on, and decodes to an
  equal message.
"""

import asyncio
import json
import math
import random
import struct

import pytest

from repro.relational.delta import Delta
from repro.relational.incremental import PartialView
from repro.relational.relation import Relation
from repro.runtime import WireCodec
from repro.runtime import binwire
from repro.runtime.tcp import read_frame, write_frame
from repro.simulation.channel import Message
from repro.sources.messages import (
    EcaAnswer,
    EcaQuery,
    EcaQueryTerm,
    MultiQueryAnswer,
    MultiQueryRequest,
    PositionAnswer,
    PositionRequest,
    QueryAnswer,
    QueryRequest,
    SnapshotAnswer,
    SnapshotRequest,
    UpdateNotice,
)


# ---------------------------------------------------------------------------
# Kernel contract
# ---------------------------------------------------------------------------

SAMPLES = [
    None,
    True,
    False,
    0,
    1,
    -1,
    63,
    -64,  # fixint boundary (one byte)
    64,
    -65,  # first varint ints
    2**40,
    -(2**40),
    2**100,
    -(2**100),
    0.0,
    -0.5,
    1e300,
    float("inf"),
    float("-inf"),
    "",
    "t",
    "request_id",  # static-table hit
    "definitely-not-in-the-static-table",
    "snow☃\U0001f600",
    "x" * 5000,
    [],
    {},
    [1, [2, [3, [4]]]],
    {"a": {"b": {"c": [None, True, -7]}}},
    {"f": [1, 2, 1, 3, 4, -1], "w": 2},
]


@pytest.mark.parametrize("value", SAMPLES, ids=repr)
def test_kernel_round_trip(value):
    assert binwire.loads(binwire.dumps(value)) == value


def test_tuple_encodes_as_list():
    assert binwire.loads(binwire.dumps((1, (2, 3)))) == [1, [2, 3]]


def test_nan_round_trips_as_nan():
    out = binwire.loads(binwire.dumps(float("nan")))
    assert math.isnan(out)


def test_bytes_round_trip():
    blob = bytes(range(256))
    assert binwire.loads(binwire.dumps({"body": blob}))["body"] == blob


def test_non_string_dict_key_rejected():
    with pytest.raises(binwire.BinwireError, match="keys must be str"):
        binwire.dumps({1: "x"})


def test_unencodable_value_rejected():
    with pytest.raises(binwire.BinwireError, match="cannot encode"):
        binwire.dumps({"x": object()})


def test_bad_magic_rejected():
    with pytest.raises(binwire.BinwireError, match="magic"):
        binwire.loads(b'{"t":"msg"}')


def test_unknown_format_rejected():
    doc = bytearray(binwire.dumps(1))
    doc[1] = 99
    with pytest.raises(binwire.BinwireError, match="format"):
        binwire.loads(bytes(doc))


def test_truncated_document_rejected():
    doc = binwire.dumps({"kind": "query", "rows": list(range(50))})
    for cut in (2, 3, len(doc) // 2, len(doc) - 1):
        with pytest.raises(binwire.BinwireError):
            binwire.loads(doc[:cut])


def test_trailing_bytes_rejected():
    with pytest.raises(binwire.BinwireError, match="trailing"):
        binwire.loads(binwire.dumps(1) + b"\x00")


def test_json_never_sniffs_as_binary():
    """Compact JSON of any protocol shape starts with a byte < 0x80,
    so the first-byte sniff can never misroute a JSON frame."""
    for obj in ({"t": "msg"}, [1, 2], "x", 7, -7, 1.5, True, None):
        body = json.dumps(obj, separators=(",", ":")).encode()
        assert not binwire.is_binary(body)
    assert binwire.is_binary(binwire.dumps({"t": "msg"}))


def test_static_table_is_collision_free_and_pinned():
    assert len(set(binwire.STATIC_STRINGS)) == len(binwire.STATIC_STRINGS)
    # The table is part of format 1: a changed prefix breaks every
    # document already on disk.  Appending new entries is fine.
    assert binwire.FORMAT == 1
    assert binwire.STATIC_STRINGS[:6] == (
        "t", "msg", "mb", "ack", "hello", "welcome"
    )


def test_static_table_strings_cost_two_bytes():
    # magic + format + dict tag + count + (ref tag + index) + fixint
    assert len(binwire.dumps({"request_id": 7})) == 2 + 2 + 2 + 1


def _random_value(rng, depth=0):
    roll = rng.random()
    if depth > 3 or roll < 0.4:
        return rng.choice(
            [
                None,
                True,
                False,
                rng.randint(-(2**48), 2**48),
                rng.randint(-64, 63),
                rng.random() * 1e9,
                rng.choice(["", "seq", "kind", "R1->wh", "warehouse", "☃"]),
            ]
        )
    if roll < 0.7:
        return [_random_value(rng, depth + 1) for _ in range(rng.randint(0, 5))]
    return {
        rng.choice(["t", "kind", "rows", "payload", f"k{i}"]): _random_value(
            rng, depth + 1
        )
        for i in range(rng.randint(0, 5))
    }


def test_fuzz_matches_json_round_trip():
    """For every JSON-shaped value, binwire and json agree exactly."""
    rng = random.Random(0xB3)
    for _ in range(500):
        value = _random_value(rng)
        via_json = json.loads(json.dumps(value))
        assert binwire.loads(binwire.dumps(value)) == via_json


# ---------------------------------------------------------------------------
# Every message type x codec version x compression
# ---------------------------------------------------------------------------

def _messages(view):
    """One instance of every protocol payload type, rows included."""
    d1 = Delta(view.schema_of(1), {(1, 3): 1, (2, 5): -1})
    d2 = Delta(view.schema_of(2), {(3, 7): 2})
    p12 = PartialView(
        view, 1, 2, Delta(view.wide_schema_range(1, 2), {(1, 3, 3, 7): 1})
    )
    p23 = PartialView(
        view, 2, 3, Delta(view.wide_schema_range(2, 3), {(3, 7, 7, 8): -1})
    )
    relation = Relation(view.schema_of(2), {(3, 7): 1, (4, 9): 3})
    payloads = [
        UpdateNotice(
            source_index=1, seq=4, delta=d1, applied_at=6.25,
            txn_id="t-9", txn_total=2,
        ),
        QueryRequest(request_id=11, partial=p12, target_index=3, epoch=2),
        QueryAnswer(request_id=11, partial=p23, epoch=2),
        MultiQueryRequest(
            request_id=12, partials=[p12, p23], target_index=3
        ),
        MultiQueryAnswer(request_id=12, partials=[p23]),
        SnapshotRequest(request_id=13, epoch=1),
        SnapshotAnswer(request_id=13, source_index=2, relation=relation),
        SnapshotAnswer(
            request_id=14, source_index=2,
            rows={"f": [3, 7, 1, 4, 9, 3], "w": 2},
        ),
        PositionRequest(request_id=15),
        PositionAnswer(request_id=15, source_index=1, position=9, epoch=3),
        EcaQuery(
            request_id=16,
            terms=[
                EcaQueryTerm(substitutions={1: d1}, sign=1),
                EcaQueryTerm(substitutions={1: d1, 2: d2}, sign=-1),
            ],
        ),
        EcaAnswer(
            request_id=16,
            delta=Delta(view.wide_schema, {(1, 3, 3, 7, 7, 8): 1}),
        ),
    ]
    return [
        Message(kind="test", sender="R1", payload=p, sent_at=float(i))
        for i, p in enumerate(payloads)
    ]


def _frame_round_trip(frame_obj, compress_min, binary):
    class BufferWriter:
        def __init__(self):
            self.data = bytearray()

        def write(self, chunk):
            self.data.extend(chunk)

    writer = BufferWriter()
    write_frame(writer, frame_obj, compress_min=compress_min, binary=binary)

    async def main():
        reader = asyncio.StreamReader()
        reader.feed_data(bytes(writer.data))
        reader.feed_eof()
        return await read_frame(reader)

    return asyncio.run(main()), bytes(writer.data)


@pytest.mark.parametrize("compress_min", [None, 0], ids=["plain", "zlib"])
@pytest.mark.parametrize("version", [1, 2, 3], ids=["v1", "v2", "v3"])
def test_every_message_type_survives_the_wire(paper_view, version, compress_min):
    codec = WireCodec(paper_view, version=version)
    for message in _messages(paper_view):
        # The in-memory fixed point absorbs lossy-but-legal decode
        # normalization (a rows-form snapshot decodes to a relation), so
        # the wire assertion below isolates serialization.
        reference = codec.decode_message(codec.encode_message(message))
        frame = {"t": "msg", "seq": 1, "m": codec.encode_message(message)}
        decoded_frame, raw = _frame_round_trip(
            frame, compress_min, binary=version >= 3
        )
        if version >= 3 and compress_min is None:
            (prefix,) = struct.unpack(">I", raw[:4])
            assert binwire.is_binary(raw[4:4 + (prefix & 0x7FFFFFFF)])
        copy = codec.decode_message(decoded_frame["m"])
        assert codec.encode_message(copy, 2) == codec.encode_message(
            reference, 2
        ), type(message.payload).__name__


@pytest.mark.parametrize("version", [1, 2, 3], ids=["v1", "v2", "v3"])
def test_cross_version_decode(paper_view, version):
    """A decoder never needs to know the sender's negotiated version:
    frames from any version decode with any receiver configuration."""
    sender = WireCodec(paper_view, version=version)
    for message in _messages(paper_view):
        frame = {"t": "msg", "seq": 1, "m": sender.encode_message(message)}
        decoded, _ = _frame_round_trip(frame, None, binary=version >= 3)
        for receiver_version in (1, 2, 3):
            receiver = WireCodec(paper_view, version=receiver_version)
            copy = receiver.decode_message(decoded["m"])
            assert type(copy.payload) is type(message.payload)
