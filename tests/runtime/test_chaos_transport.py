"""The chaos layer must misbehave *below* the FIFO contract, not break it.

Every test here drives real messages through a faulting transport and
asserts the two things the protocol stack is entitled to: exactly-once
delivery in send order, and deterministic fault schedules (same seed,
same faults).  The faults themselves are asserted via the stats
counters -- a chaos layer that injects nothing tests nothing.
"""

import asyncio

import pytest

from repro.harness.config import ExperimentConfig
from repro.relational.delta import Delta
from repro.runtime import (
    PROFILES,
    AsyncRuntime,
    ChannelListener,
    ChaosConfig,
    ChaosLocalChannel,
    ChaosStats,
    ChaosTcpProxy,
    FaultPlan,
    TcpChannel,
    TcpChannelConfig,
    WireCodec,
    run_distributed,
)
from repro.runtime.chaos import profile
from repro.simulation.channel import Message
from repro.sources.messages import UpdateNotice
from repro.warehouse.registry import algorithm_info


class Sink:
    def __init__(self):
        self.items = []

    def put(self, message):
        self.items.append(message)

    def __len__(self):
        return len(self.items)


def make_notice(view, seq):
    return UpdateNotice(
        source_index=1,
        seq=seq,
        delta=Delta(view.schema_of(1), {(seq, seq): 1}),
        applied_at=float(seq),
    )


def seqs(sink):
    return [m.payload.seq for m in sink.items]


def run(coro):
    return asyncio.run(coro)


# ---------------------------------------------------------------------------
# FaultPlan: deterministic, seed-keyed decisions
# ---------------------------------------------------------------------------

HOSTILE = PROFILES["hostile"]


def plan_fingerprint(plan, n=200):
    return [
        (round(plan.delay(k), 6), plan.duplicated(k), plan.drop_attempts(k))
        for k in range(1, n + 1)
    ]


def test_fault_plan_is_deterministic():
    a = FaultPlan(HOSTILE, seed=7, scope="R1->wh")
    b = FaultPlan(HOSTILE, seed=7, scope="R1->wh")
    assert plan_fingerprint(a) == plan_fingerprint(b)


def test_fault_plan_varies_with_seed_and_scope():
    base = plan_fingerprint(FaultPlan(HOSTILE, seed=7, scope="R1->wh"))
    assert plan_fingerprint(FaultPlan(HOSTILE, seed=8, scope="R1->wh")) != base
    assert plan_fingerprint(FaultPlan(HOSTILE, seed=7, scope="R2->wh")) != base


def test_fault_plan_order_independent():
    """Decisions are keyed per event, not drawn from a shared stream."""
    plan = FaultPlan(HOSTILE, seed=3, scope="x")
    forward = [plan.drop_attempts(k) for k in range(1, 51)]
    backward = [plan.drop_attempts(k) for k in range(50, 0, -1)]
    assert forward == backward[::-1]


def test_blackout_windows_follow_crash_cadence():
    cfg = ChaosConfig(name="c", crash_period=40.0, crash_downtime=6.0)
    plan = FaultPlan(cfg, seed=0, scope="x")
    assert plan.blackout_remaining(0.0) == 0.0  # no window before one period
    assert plan.blackout_remaining(39.9) == 0.0
    assert plan.blackout_remaining(40.0) == pytest.approx(6.0)
    assert plan.blackout_remaining(43.0) == pytest.approx(3.0)
    assert plan.blackout_remaining(46.0) == 0.0
    assert plan.blackout_remaining(80.0) == pytest.approx(6.0)


def test_healthy_profile_is_inactive():
    assert not PROFILES["healthy"].active
    assert not ChaosConfig().active
    for name in ("delay", "dup", "drop", "crash", "hostile"):
        assert PROFILES[name].active, name


def test_profile_resolution():
    assert profile(None) is None
    assert profile("dup") is PROFILES["dup"]
    custom = ChaosConfig(name="mine", dup_prob=1.0)
    assert profile(custom) is custom
    with pytest.raises(KeyError):
        profile("no-such-profile")


# ---------------------------------------------------------------------------
# ChaosLocalChannel: exactly-once FIFO under every fault family
# ---------------------------------------------------------------------------

@pytest.mark.parametrize(
    "name",
    [
        "delay", "dup", "drop", "hostile",
        # Source-side profiles: the 40-deep send queue below guarantees
        # frames are pending together, so stalls and reorders do fire.
        "source-stall", "source-burst", "source-reorder",
    ],
)
def test_chaos_local_channel_exactly_once_fifo(paper_view, name):
    async def main():
        runtime = AsyncRuntime(time_scale=0.0005)
        sink = Sink()
        stats = ChaosStats()
        channel = ChaosLocalChannel(
            runtime, "R1->wh", sink, config=PROFILES[name], seed=0, stats=stats
        )
        for seq in range(1, 41):
            channel.send(Message("update", "R1", make_notice(paper_view, seq)))
        await channel.flush(timeout=30.0)
        await runtime.aclose()
        return seqs(sink), stats

    delivered, stats = run(main())
    assert delivered == list(range(1, 41))  # exactly once, in order
    assert stats.faults_injected > 0  # the profile actually fired


def test_chaos_local_channel_suppresses_every_duplicate(paper_view):
    """Injected duplicates exercise the receive filter, never the mailbox."""

    async def main():
        runtime = AsyncRuntime(time_scale=0.0005)
        sink = Sink()
        stats = ChaosStats()
        channel = ChaosLocalChannel(
            runtime, "R1->wh", sink, config=PROFILES["dup"], seed=1, stats=stats
        )
        for seq in range(1, 31):
            channel.send(Message("update", "R1", make_notice(paper_view, seq)))
        await channel.flush(timeout=30.0)
        # Duplicates land dup_lag after their originals; wait them out.
        await runtime.wait_until(
            lambda: stats.dups_suppressed == stats.dups_injected, timeout=10.0
        )
        await runtime.aclose()
        return seqs(sink), stats

    delivered, stats = run(main())
    assert delivered == list(range(1, 31))
    assert stats.dups_injected > 0
    assert stats.dups_suppressed == stats.dups_injected


def test_chaos_local_channel_fault_schedule_reproducible(paper_view):
    """Same seed, same faults -- counters match run for run."""

    async def once():
        runtime = AsyncRuntime(time_scale=0.0005)
        stats = ChaosStats()
        channel = ChaosLocalChannel(
            runtime, "R1->wh", Sink(), config=PROFILES["hostile"], seed=5,
            stats=stats,
        )
        for seq in range(1, 31):
            channel.send(Message("update", "R1", make_notice(paper_view, seq)))
        await channel.flush(timeout=30.0)
        await runtime.aclose()
        return (stats.delays_injected, stats.dups_injected, stats.drops_injected)

    assert run(once()) == run(once())


# ---------------------------------------------------------------------------
# ChaosTcpProxy: faults between real sockets
# ---------------------------------------------------------------------------

async def _through_proxy(
    paper_view, config, seed=0, n=30, time_scale=0.0005, pace=0.0
):
    runtime = AsyncRuntime(time_scale=time_scale)
    codec = WireCodec(paper_view)
    sink = Sink()
    listener = ChannelListener(runtime)
    listener.register("R1->wh", sink, codec)
    await listener.start()
    stats = ChaosStats()
    proxy = ChaosTcpProxy(
        runtime, "R1->wh", listener.address, config, seed=seed, stats=stats
    )
    await proxy.start()
    channel = TcpChannel(
        runtime, "R1->wh", *proxy.address, codec, None,
        TcpChannelConfig(connect_timeout=2.0, backoff_initial=0.01),
    )
    for seq in range(1, n + 1):
        channel.send(Message("update", "R1", make_notice(paper_view, seq)))
        if pace:
            await runtime.sleep(pace)  # spread traffic across fault windows
        else:
            await asyncio.sleep(0)  # one frame per message: more fault points
    await channel.flush(timeout=60.0)
    reconnects = channel.reconnects
    await channel.aclose()
    await proxy.aclose()
    await listener.aclose()
    await runtime.aclose()
    return seqs(sink), stats, reconnects


def test_proxy_duplicated_frames_are_absorbed(paper_view):
    delivered, stats, _ = run(
        _through_proxy(paper_view, PROFILES["dup"], seed=2)
    )
    assert delivered == list(range(1, 31))
    assert stats.dups_injected > 0


def test_proxy_kills_force_reconnect_and_resume(paper_view):
    """A killed connection loses its frame; the session resends it."""
    delivered, stats, reconnects = run(
        _through_proxy(paper_view, PROFILES["drop"], seed=0)
    )
    assert delivered == list(range(1, 31))
    assert stats.connections_killed > 0
    assert reconnects >= stats.connections_killed


def test_proxy_blackout_refuses_then_recovers(paper_view):
    """During a blackout dials are slammed shut; traffic resumes after."""
    config = ChaosConfig(name="c", crash_period=8.0, crash_downtime=3.0)
    delivered, stats, reconnects = run(
        _through_proxy(
            paper_view, config, seed=0, n=40, time_scale=0.01, pace=0.5
        )
    )
    assert delivered == list(range(1, 41))
    assert stats.blackouts_hit > 0


# ---------------------------------------------------------------------------
# End to end: a chaos run still reaches the claimed consistency level
# ---------------------------------------------------------------------------

@pytest.mark.parametrize(
    "transport,profile_name",
    [("local", "hostile"), ("tcp", "drop")],
)
def test_distributed_chaos_run_keeps_claimed_consistency(
    transport, profile_name
):
    config = ExperimentConfig(
        algorithm="sweep",
        n_sources=3,
        n_updates=10,
        seed=0,
        mean_interarrival=6.0,
        check_consistency=True,
    )
    result = run_distributed(
        config,
        transport=transport,
        time_scale=0.002,
        timeout=120.0,
        chaos=profile_name,
    )
    claimed = algorithm_info("sweep").claimed_consistency
    assert result.classified_level >= claimed
    assert result.chaos_profile == profile_name
    assert result.chaos_stats.faults_injected > 0
    assert result.updates_delivered == 10


def test_healthy_chaos_run_adds_no_machinery():
    """chaos='healthy' must not wrap channels or allocate proxies."""
    config = ExperimentConfig(
        algorithm="sweep", n_sources=2, n_updates=6, seed=0,
        mean_interarrival=4.0, check_consistency=True,
    )
    result = run_distributed(
        config, transport="local", time_scale=0.002, chaos="healthy"
    )
    assert result.chaos_profile == "healthy"
    assert result.chaos_stats is None  # inactive profile: plain channels
