"""WireCodec roundtrips every protocol payload through JSON.

The ``codec`` fixture is parametrized over both row encodings -- v1
(list-of-pairs) and v2 (flat array) -- so every roundtrip below is
exercised under each wire format.  Decoding is version-agnostic, which
the cross-version tests at the bottom pin explicitly.
"""

import json

import pytest

from repro.relational.delta import Delta
from repro.relational.incremental import PartialView
from repro.relational.relation import Relation
from repro.runtime import WireCodec, WireProtocolError
from repro.runtime.codec import CODEC_VERSION_MAX
from repro.simulation.channel import Message
from repro.sources.messages import (
    EcaAnswer,
    EcaQuery,
    EcaQueryTerm,
    MultiQueryAnswer,
    MultiQueryRequest,
    QueryAnswer,
    QueryRequest,
    SnapshotAnswer,
    SnapshotRequest,
    UpdateNotice,
)


@pytest.fixture(params=[1, 2, 3], ids=["v1", "v2", "v3"])
def codec(request, paper_view):
    # v3 shares v2's object layout (the binary serializer lives in the
    # transport), so the JSON roundtrip below is the right test for it
    # too; test_binwire.py covers the binary framing.
    return WireCodec(paper_view, version=request.param)


def roundtrip(codec, message):
    """Encode through actual JSON text, decode, return the copy."""
    wire = json.loads(json.dumps(codec.encode_message(message)))
    return codec.decode_message(wire)


def _delta(paper_view, index, rows):
    return Delta(paper_view.schema_of(index), rows)


def test_update_notice_roundtrip(codec, paper_view):
    notice = UpdateNotice(
        source_index=2,
        seq=3,
        delta=_delta(paper_view, 2, {(3, 7): 1, (4, 9): -1}),
        applied_at=12.5,
        txn_id="t-1",
        txn_total=2,
    )
    message = Message(kind="update", sender="R2", payload=notice, sent_at=13.0)
    copy = roundtrip(codec, message)
    assert copy.kind == "update" and copy.sender == "R2"
    assert copy.sent_at == 13.0
    assert copy.payload.source_index == 2
    assert copy.payload.seq == 3
    assert copy.payload.txn_id == "t-1"
    assert copy.payload.txn_total == 2
    assert copy.payload.delta == notice.delta
    assert copy.payload.delta.schema == notice.delta.schema


def test_query_request_and_answer_roundtrip(codec, paper_view):
    partial = PartialView(
        paper_view, 2, 3,
        Delta(paper_view.wide_schema_range(2, 3), {(3, 7, 7, 8): 1}),
    )
    request = Message(
        kind="query", sender="wh",
        payload=QueryRequest(request_id=9, partial=partial, target_index=1),
    )
    copy = roundtrip(codec, request).payload
    assert copy.request_id == 9 and copy.target_index == 1
    assert (copy.partial.lo, copy.partial.hi) == (2, 3)
    assert copy.partial.delta == partial.delta

    answer = Message(
        kind="answer", sender="R1",
        payload=QueryAnswer(request_id=9, partial=partial),
    )
    assert roundtrip(codec, answer).payload.partial.delta == partial.delta


def test_multi_query_roundtrip(codec, paper_view):
    partials = [
        PartialView(
            paper_view, 1, 1,
            Delta(paper_view.schema_of(1), {(1, 3): 1}),
        ),
        PartialView(
            paper_view, 1, 2,
            Delta(paper_view.wide_schema_range(1, 2), {(1, 3, 3, 7): -1}),
        ),
    ]
    message = Message(
        kind="query", sender="wh",
        payload=MultiQueryRequest(request_id=4, partials=partials, target_index=3),
    )
    copy = roundtrip(codec, message).payload
    assert [p.delta for p in copy.partials] == [p.delta for p in partials]
    assert copy.target_index == 3

    answer = Message(
        kind="answer", sender="R3",
        payload=MultiQueryAnswer(request_id=4, partials=partials),
    )
    assert len(roundtrip(codec, answer).payload.partials) == 2


def test_eca_roundtrip(codec, paper_view):
    query = EcaQuery(
        request_id=6,
        terms=[
            EcaQueryTerm(
                substitutions={1: _delta(paper_view, 1, {(1, 3): 1})}, sign=1
            ),
            EcaQueryTerm(
                substitutions={
                    1: _delta(paper_view, 1, {(1, 3): 1}),
                    2: _delta(paper_view, 2, {(3, 7): -1}),
                },
                sign=-1,
            ),
        ],
    )
    copy = roundtrip(
        codec, Message(kind="query", sender="wh", payload=query)
    ).payload
    assert [t.sign for t in copy.terms] == [1, -1]
    assert copy.terms[1].substitutions[2] == query.terms[1].substitutions[2]

    answer = EcaAnswer(
        request_id=6,
        delta=Delta(paper_view.wide_schema, {(1, 3, 3, 7, 7, 8): 1}),
    )
    copy = roundtrip(
        codec, Message(kind="answer", sender="central", payload=answer)
    ).payload
    assert copy.delta == answer.delta


def test_snapshot_roundtrip(codec, paper_view, paper_states):
    request = Message(
        kind="query", sender="wh", payload=SnapshotRequest(request_id=2)
    )
    assert roundtrip(codec, request).payload.request_id == 2

    answer = Message(
        kind="answer", sender="R3",
        payload=SnapshotAnswer(
            request_id=2, source_index=3, relation=paper_states["R3"]
        ),
    )
    copy = roundtrip(codec, answer).payload
    assert isinstance(copy.relation, Relation)
    assert copy.relation == paper_states["R3"]


def test_unknown_payload_type_rejected(codec):
    with pytest.raises(WireProtocolError):
        codec.encode_payload(object())
    with pytest.raises(WireProtocolError):
        codec.decode_payload({"type": "no-such-payload"})


def test_malformed_envelope_rejected(codec):
    with pytest.raises(WireProtocolError):
        codec.decode_message({"kind": "update"})  # no sender/payload


# ---------------------------------------------------------------------------
# Row-encoding versions
# ---------------------------------------------------------------------------

def _notice(paper_view, rows):
    return Message(
        kind="update", sender="R1",
        payload=UpdateNotice(
            source_index=1, seq=1,
            delta=_delta(paper_view, 1, rows), applied_at=1.0,
        ),
    )


def test_negative_counts_and_empty_delta_roundtrip(codec, paper_view):
    """Deletions (count < 0) and empty deltas survive both encodings."""
    mixed = roundtrip(codec, _notice(paper_view, {(1, 3): -2, (4, 9): 1}))
    assert dict(mixed.payload.delta.items()) == {(1, 3): -2, (4, 9): 1}

    empty = roundtrip(codec, _notice(paper_view, {}))
    assert dict(empty.payload.delta.items()) == {}


def test_v2_rows_are_flat_arrays(paper_view):
    """v1 emits list-of-pairs rows, v2 one flat ``{"f": [...]}`` array."""
    from repro.runtime.codec import _encode_rows

    delta = Delta(paper_view.schema_of(1), {(1, 3): 2, (4, 9): -1})
    v1 = _encode_rows(delta, 1)
    v2 = _encode_rows(delta, 2)
    assert isinstance(v1, list) and all(len(e) == 2 for e in v1)
    assert set(v2) == {"f"}
    # Stride is arity + 1: the row values followed by the signed count.
    arity = len(paper_view.schema_of(1).attributes)
    assert len(v2["f"]) == 2 * (arity + 1)


def test_cross_version_decode(paper_view):
    """A v1 decoder accepts v2 frames and vice versa (downgrade safety)."""
    message = Message(
        kind="update", sender="R1",
        payload=UpdateNotice(
            source_index=1, seq=1,
            delta=Delta(paper_view.schema_of(1), {(1, 3): 1, (4, 9): -1}),
            applied_at=1.0,
        ),
    )
    v1_codec = WireCodec(paper_view, version=1)
    v2_codec = WireCodec(paper_view, version=2)
    for encoder, decoder in ((v1_codec, v2_codec), (v2_codec, v1_codec)):
        wire = json.loads(json.dumps(encoder.encode_message(message)))
        assert decoder.decode_message(wire).payload.delta == message.payload.delta


def test_encode_message_version_override(paper_view):
    """Transports pass the negotiated version per call; it wins."""
    codec = WireCodec(paper_view, version=1)
    message = Message(
        kind="update", sender="R1",
        payload=UpdateNotice(
            source_index=1, seq=1,
            delta=Delta(paper_view.schema_of(1), {(1, 3): 1}), applied_at=1.0,
        ),
    )
    wire = codec.encode_message(message, version=2)
    assert isinstance(wire["payload"]["rows"], dict)  # flat v2 shape
    assert isinstance(
        codec.encode_message(message)["payload"]["rows"], list
    )  # the codec's own default is untouched


def test_codec_version_validation(paper_view):
    for bad in (0, CODEC_VERSION_MAX + 1):
        with pytest.raises(ValueError):
            WireCodec(paper_view, version=bad)


def test_flat_rows_with_bad_stride_rejected(paper_view):
    """A flat array whose length is not a multiple of arity+1 is corrupt."""
    codec = WireCodec(paper_view, version=2)
    message = Message(
        kind="update", sender="R1",
        payload=UpdateNotice(
            source_index=1, seq=1,
            delta=Delta(paper_view.schema_of(1), {(1, 3): 1}), applied_at=1.0,
        ),
    )
    wire = codec.encode_message(message)
    wire["payload"]["rows"]["f"].append(99)  # truncated/extra element
    with pytest.raises(WireProtocolError):
        codec.decode_message(wire)
