"""WireCodec roundtrips every protocol payload through JSON."""

import json

import pytest

from repro.relational.delta import Delta
from repro.relational.incremental import PartialView
from repro.relational.relation import Relation
from repro.runtime import WireCodec, WireProtocolError
from repro.simulation.channel import Message
from repro.sources.messages import (
    EcaAnswer,
    EcaQuery,
    EcaQueryTerm,
    MultiQueryAnswer,
    MultiQueryRequest,
    QueryAnswer,
    QueryRequest,
    SnapshotAnswer,
    SnapshotRequest,
    UpdateNotice,
)


@pytest.fixture
def codec(paper_view):
    return WireCodec(paper_view)


def roundtrip(codec, message):
    """Encode through actual JSON text, decode, return the copy."""
    wire = json.loads(json.dumps(codec.encode_message(message)))
    return codec.decode_message(wire)


def _delta(paper_view, index, rows):
    return Delta(paper_view.schema_of(index), rows)


def test_update_notice_roundtrip(codec, paper_view):
    notice = UpdateNotice(
        source_index=2,
        seq=3,
        delta=_delta(paper_view, 2, {(3, 7): 1, (4, 9): -1}),
        applied_at=12.5,
        txn_id="t-1",
        txn_total=2,
    )
    message = Message(kind="update", sender="R2", payload=notice, sent_at=13.0)
    copy = roundtrip(codec, message)
    assert copy.kind == "update" and copy.sender == "R2"
    assert copy.sent_at == 13.0
    assert copy.payload.source_index == 2
    assert copy.payload.seq == 3
    assert copy.payload.txn_id == "t-1"
    assert copy.payload.txn_total == 2
    assert copy.payload.delta == notice.delta
    assert copy.payload.delta.schema == notice.delta.schema


def test_query_request_and_answer_roundtrip(codec, paper_view):
    partial = PartialView(
        paper_view, 2, 3,
        Delta(paper_view.wide_schema_range(2, 3), {(3, 7, 7, 8): 1}),
    )
    request = Message(
        kind="query", sender="wh",
        payload=QueryRequest(request_id=9, partial=partial, target_index=1),
    )
    copy = roundtrip(codec, request).payload
    assert copy.request_id == 9 and copy.target_index == 1
    assert (copy.partial.lo, copy.partial.hi) == (2, 3)
    assert copy.partial.delta == partial.delta

    answer = Message(
        kind="answer", sender="R1",
        payload=QueryAnswer(request_id=9, partial=partial),
    )
    assert roundtrip(codec, answer).payload.partial.delta == partial.delta


def test_multi_query_roundtrip(codec, paper_view):
    partials = [
        PartialView(
            paper_view, 1, 1,
            Delta(paper_view.schema_of(1), {(1, 3): 1}),
        ),
        PartialView(
            paper_view, 1, 2,
            Delta(paper_view.wide_schema_range(1, 2), {(1, 3, 3, 7): -1}),
        ),
    ]
    message = Message(
        kind="query", sender="wh",
        payload=MultiQueryRequest(request_id=4, partials=partials, target_index=3),
    )
    copy = roundtrip(codec, message).payload
    assert [p.delta for p in copy.partials] == [p.delta for p in partials]
    assert copy.target_index == 3

    answer = Message(
        kind="answer", sender="R3",
        payload=MultiQueryAnswer(request_id=4, partials=partials),
    )
    assert len(roundtrip(codec, answer).payload.partials) == 2


def test_eca_roundtrip(codec, paper_view):
    query = EcaQuery(
        request_id=6,
        terms=[
            EcaQueryTerm(
                substitutions={1: _delta(paper_view, 1, {(1, 3): 1})}, sign=1
            ),
            EcaQueryTerm(
                substitutions={
                    1: _delta(paper_view, 1, {(1, 3): 1}),
                    2: _delta(paper_view, 2, {(3, 7): -1}),
                },
                sign=-1,
            ),
        ],
    )
    copy = roundtrip(
        codec, Message(kind="query", sender="wh", payload=query)
    ).payload
    assert [t.sign for t in copy.terms] == [1, -1]
    assert copy.terms[1].substitutions[2] == query.terms[1].substitutions[2]

    answer = EcaAnswer(
        request_id=6,
        delta=Delta(paper_view.wide_schema, {(1, 3, 3, 7, 7, 8): 1}),
    )
    copy = roundtrip(
        codec, Message(kind="answer", sender="central", payload=answer)
    ).payload
    assert copy.delta == answer.delta


def test_snapshot_roundtrip(codec, paper_view, paper_states):
    request = Message(
        kind="query", sender="wh", payload=SnapshotRequest(request_id=2)
    )
    assert roundtrip(codec, request).payload.request_id == 2

    answer = Message(
        kind="answer", sender="R3",
        payload=SnapshotAnswer(
            request_id=2, source_index=3, relation=paper_states["R3"]
        ),
    )
    copy = roundtrip(codec, answer).payload
    assert isinstance(copy.relation, Relation)
    assert copy.relation == paper_states["R3"]


def test_unknown_payload_type_rejected(codec):
    with pytest.raises(WireProtocolError):
        codec.encode_payload(object())
    with pytest.raises(WireProtocolError):
        codec.decode_payload({"type": "no-such-payload"})


def test_malformed_envelope_rejected(codec):
    with pytest.raises(WireProtocolError):
        codec.decode_message({"kind": "update"})  # no sender/payload
