"""Dead-peer behaviour of the serve modes (no silent hangs, no exit 0).

A long-lived site pointed at an unreachable peer must fail fast and
loud: :func:`probe_peer` burns the channel's retry budget and raises
:class:`TransportRetriesExceeded`, every ``serve-*`` entry point probes
its peers up front, and the CLI converts the error into a clean
``error:`` line and :data:`~repro.runtime.CLEAN_FAILURE_EXIT` (3) --
non-zero so nothing upstream mistakes it for success, but distinct from
a crash so a supervisor's restart policy leaves it alone.
"""

import asyncio

import pytest

from repro.cli import main
from repro.harness.config import ExperimentConfig
from repro.runtime import (
    CLEAN_FAILURE_EXIT,
    TransportRetriesExceeded,
    free_port,
    probe_peer,
    serve_shard_async,
    serve_sharded_source_async,
    serve_source_async,
    serve_warehouse_async,
)
from repro.runtime.tcp import TcpChannelConfig
from repro.warehouse.sharding import ShardMember

#: A retry budget small enough that every test fails in well under a second.
TIGHT = TcpChannelConfig(
    connect_timeout=0.2,
    max_retries=2,
    backoff_initial=0.01,
    backoff_max=0.02,
)


def _config(**overrides):
    base = dict(
        algorithm="sweep",
        n_sources=3,
        n_updates=4,
        seed=0,
        mean_interarrival=2.0,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def _dead_address():
    return ("127.0.0.1", free_port())


def test_probe_peer_raises_after_retry_budget():
    host, port = _dead_address()
    with pytest.raises(TransportRetriesExceeded, match="source R1"):
        asyncio.run(probe_peer(host, port, TIGHT, what="source R1"))


def test_probe_peer_passes_with_a_listener():
    async def scenario():
        server = await asyncio.start_server(
            lambda r, w: w.close(), "127.0.0.1", 0
        )
        host, port = server.sockets[0].getsockname()[:2]
        try:
            await probe_peer(host, port, TIGHT, what="source R1")
        finally:
            server.close()
            await server.wait_closed()

    asyncio.run(scenario())


def test_serve_warehouse_fails_fast_on_dead_source():
    config = _config()
    sources = {i: _dead_address() for i in range(1, config.n_sources + 1)}
    with pytest.raises(TransportRetriesExceeded, match="unreachable"):
        asyncio.run(
            serve_warehouse_async(
                config,
                source_addresses=sources,
                expect_updates=config.n_updates,
                timeout=30.0,
                tcp_config=TIGHT,
            )
        )


def test_serve_source_fails_fast_on_dead_warehouse():
    with pytest.raises(TransportRetriesExceeded, match="unreachable"):
        asyncio.run(
            serve_source_async(
                _config(),
                index=1,
                warehouse_address=_dead_address(),
                timeout=30.0,
                tcp_config=TIGHT,
            )
        )


def test_serve_shard_fails_fast_on_dead_source():
    config = _config(n_views=2)
    sources = {i: _dead_address() for i in range(1, config.n_sources + 1)}
    with pytest.raises(TransportRetriesExceeded, match="unreachable"):
        asyncio.run(
            serve_shard_async(
                config,
                shard_id=0,
                n_shards=2,
                source_addresses=sources,
                expect_updates=config.n_updates,
                timeout=30.0,
                tcp_config=TIGHT,
            )
        )


# ---------------------------------------------------------------------------
# CLI: clean message, deliberate-failure exit code, never exit 0
# ---------------------------------------------------------------------------

def _base_cli_args():
    return [
        "--algorithm", "sweep", "--sources", "3", "--updates", "4",
        "--seed", "0", "--interarrival", "2.0",
        "--max-retries", "2", "--connect-timeout", "0.2",
    ]


def test_cli_serve_warehouse_exits_nonzero(capsys):
    host, port = _dead_address()
    rc = main(
        ["serve-warehouse", *_base_cli_args(),
         "--source", f"1={host}:{port}", "--expect-updates", "4"]
    )
    captured = capsys.readouterr()
    assert rc == CLEAN_FAILURE_EXIT
    assert "error:" in captured.err
    assert "unreachable" in captured.err


def test_cli_serve_source_exits_nonzero(capsys):
    host, port = _dead_address()
    rc = main(
        ["serve-source", *_base_cli_args(),
         "--index", "1", "--warehouse", f"{host}:{port}"]
    )
    captured = capsys.readouterr()
    assert rc == CLEAN_FAILURE_EXIT
    assert "error:" in captured.err
    assert "unreachable" in captured.err


def test_cli_serve_shard_exits_nonzero(capsys):
    host, port = _dead_address()
    rc = main(
        ["serve-shard", *_base_cli_args(), "--views", "2",
         "--shard-id", "0", "--shards", "2",
         "--source", f"1={host}:{port}"]
    )
    captured = capsys.readouterr()
    assert rc == CLEAN_FAILURE_EXIT
    assert "error:" in captured.err


# ---------------------------------------------------------------------------
# Replica groups: a dead standby is tolerated, a dead *shard* is not
# ---------------------------------------------------------------------------

def test_sharded_source_fails_when_every_member_of_a_shard_is_dead():
    # Both the primary and the standby are unreachable: no surviving
    # member carries shard 0, so the probe failure must propagate.
    addresses = {
        ShardMember(0): _dead_address(),
        ShardMember(0, 1): _dead_address(),
    }
    with pytest.raises(TransportRetriesExceeded, match="unreachable"):
        asyncio.run(
            serve_sharded_source_async(
                _config(n_views=2),
                index=1,
                shard_addresses=addresses,
                timeout=30.0,
                tcp_config=TIGHT,
            )
        )


def test_fleet_tolerates_a_dead_standby():
    """Live primary + unreachable standby address: the fleet completes.

    Every source drops the standby member at probe time (its shard is
    still carried by the primary) and the shard verifies its views --
    the replica-group equivalent of "a crashed standby with a healthy
    primary is tolerated"."""
    config = _config(n_views=2)
    source_ports = {i: free_port() for i in range(1, config.n_sources + 1)}
    shard_port = free_port()
    members = {
        ShardMember(0): ("127.0.0.1", shard_port),
        ShardMember(0, 1): _dead_address(),
    }

    async def fleet():
        shard = serve_shard_async(
            config,
            shard_id=0,
            n_shards=1,
            source_addresses={
                i: ("127.0.0.1", port) for i, port in source_ports.items()
            },
            listen_port=shard_port,
            time_scale=0.001,
            expect_updates=config.n_updates,
            timeout=60.0,
            tcp_config=TIGHT,
        )
        sources = [
            serve_sharded_source_async(
                config,
                index=i,
                shard_addresses=members,
                listen_port=source_ports[i],
                time_scale=0.001,
                linger=0.2,
                timeout=60.0,
                tcp_config=TIGHT,
            )
            for i in source_ports
        ]
        result, *_ = await asyncio.gather(shard, *sources)
        return result

    result = asyncio.run(fleet())
    # serve_shard_async(verify=True) would have raised on a view below
    # the claimed level, so reaching here already implies oracle success.
    assert result.deliveries_total == config.n_updates
    assert set(result.levels) == set(result.final_views)
