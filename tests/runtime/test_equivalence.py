"""Simulator-vs-runtime equivalence: same workload, same final view.

The acceptance test of the runtime: an identical seeded
:class:`ExperimentConfig` must drive the simulator and the asyncio runtime
to the *same* final materialized view (both converge to the view over the
final source states, which depend only on the workload), with SWEEP
achieving complete consistency and its exact 2(n-1) per-update message
cost on real transports too.
"""

import pytest

from repro.consistency.levels import ConsistencyLevel
from repro.harness.config import ExperimentConfig
from repro.harness.runner import run_experiment
from repro.runtime import run_distributed


def config_for(algorithm, **overrides):
    base = dict(
        algorithm=algorithm,
        n_sources=3,
        n_updates=10,
        seed=42,
        mean_interarrival=5.0,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


@pytest.mark.parametrize("transport", ["local", "tcp"])
def test_sweep_runtime_matches_simulator(transport):
    config = config_for("sweep")
    simulated = run_experiment(config)
    distributed = run_distributed(
        config, transport=transport, time_scale=0.001, timeout=60.0
    )

    assert distributed.final_view == simulated.final_view
    assert distributed.recorder.updates_delivered == config.n_updates

    # Complete consistency over a real transport, same as in simulation.
    assert distributed.consistency[ConsistencyLevel.COMPLETE].ok
    assert distributed.classified_level == ConsistencyLevel.COMPLETE

    # SWEEP's exact message cost: 2(n-1) query/answer messages per update
    # plus the update notice itself -- identical on both hosts.
    per_update = 2 * (config.n_sources - 1)
    for result in (simulated, distributed):
        queries = result.metrics.messages_of_kind("query")
        answers = result.metrics.messages_of_kind("answer")
        assert queries + answers == per_update * config.n_updates
        assert result.metrics.messages_of_kind("update") == config.n_updates


@pytest.mark.parametrize("transport", ["local", "tcp"])
def test_nested_sweep_runtime_matches_simulator(transport):
    config = config_for("nested-sweep", n_updates=8)
    simulated = run_experiment(config)
    distributed = run_distributed(
        config, transport=transport, time_scale=0.001, timeout=60.0
    )
    assert distributed.final_view == simulated.final_view
    assert distributed.consistency[ConsistencyLevel.STRONG].ok


@pytest.mark.parametrize(
    "algorithm", ["pipelined-sweep", "eca", "strobe", "c-strobe"]
)
def test_other_algorithms_converge_to_simulator_view(algorithm):
    """Every registered algorithm reaches the simulator's final view on TCP."""
    config = config_for(algorithm, n_updates=8)
    simulated = run_experiment(config)
    distributed = run_distributed(
        config, transport="tcp", time_scale=0.001, timeout=60.0
    )
    assert distributed.final_view == simulated.final_view
    assert distributed.consistency[ConsistencyLevel.CONVERGENCE].ok


def test_sweep_tcp_with_sqlite_backend_matches():
    """Backend choice is orthogonal to the host: sqlite over TCP matches."""
    config = config_for("sweep", backend="sqlite", n_updates=6)
    simulated = run_experiment(config)
    distributed = run_distributed(
        config, transport="tcp", time_scale=0.001, timeout=60.0
    )
    assert distributed.final_view == simulated.final_view
    assert distributed.classified_level == ConsistencyLevel.COMPLETE


def test_distributed_result_report_mentions_transport():
    config = config_for("sweep", n_updates=4)
    result = run_distributed(
        config, transport="local", time_scale=0.001, timeout=60.0
    )
    text = result.report()
    assert "transport" in text and "local" in text
