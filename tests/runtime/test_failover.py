"""Hot-standby failover: promotion equivalence, fencing, and supervision.

The center of gravity is the equivalence claim: killing a primary at a
deterministic protocol point and promoting its standby must yield final
views byte-equal to an uncrashed run, with the scheduler's claimed
consistency level intact.  The mutation test pins the fencing argument
from the other side -- replaying the dead primary's last frame into the
standby (what a fence-skipping takeover would deliver) must fail the
oracle, proving the harness can see the bug it guards against.
"""

import pytest

from repro.consistency.levels import ConsistencyLevel
from repro.harness.config import ExperimentConfig
from repro.runtime import FailoverSpec, run_sharded
from repro.runtime.errors import RuntimeHostError
from repro.runtime.shard import ShardSupervisor
from repro.warehouse.sharding import canonical_view_bytes


def config_for(algorithm, **overrides):
    base = dict(
        algorithm=algorithm,
        n_sources=3,
        n_updates=10,
        seed=7,
        mean_interarrival=4.0,
        n_views=4,
        check_consistency=True,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


RUN_ARGS = dict(
    n_shards=2, transport="local", time_scale=0.001,
    timeout=60.0, strategy="round-robin",
)


def kill_shard_of(baseline):
    return baseline.plan.active_shards[0]


# ---------------------------------------------------------------------------
# FailoverSpec validation
# ---------------------------------------------------------------------------

def test_failover_spec_requires_exactly_one_threshold():
    with pytest.raises(ValueError):
        FailoverSpec(shard=0)
    with pytest.raises(ValueError):
        FailoverSpec(shard=0, after_installs=1, after_queries=1)
    with pytest.raises(ValueError):
        FailoverSpec(shard=0, after_deliveries=0)
    spec = FailoverSpec(shard=1, after_installs=2)
    assert spec.shard == 1 and not spec.unfenced_replay


def test_failover_without_standby_is_rejected():
    config = config_for("sweep")
    with pytest.raises(ValueError, match="replicas"):
        run_sharded(
            config, failover=FailoverSpec(shard=0, after_installs=1),
            **RUN_ARGS,
        )


def test_kill_switch_that_never_fires_fails_the_run():
    # Threshold far beyond the workload: the run would silently degrade
    # into a no-op failover test, so the host refuses to pass it.
    config = config_for("sweep", n_updates=4)
    with pytest.raises(RuntimeHostError, match="never fired"):
        run_sharded(
            config, replicas=1,
            failover=FailoverSpec(shard=0, after_installs=10_000),
            **RUN_ARGS,
        )


# ---------------------------------------------------------------------------
# Promotion equivalence at each kill point
# ---------------------------------------------------------------------------

@pytest.mark.parametrize(
    "algorithm,claimed",
    [
        ("sweep", ConsistencyLevel.COMPLETE),
        ("batched-sweep", ConsistencyLevel.STRONG),
    ],
)
@pytest.mark.parametrize(
    "threshold",
    [
        {"after_installs": 2},
        {"after_deliveries": 3},
        {"after_queries": 1},
    ],
    ids=["mid-batch", "mid-compensation", "mid-query"],
)
def test_promoted_standby_matches_uncrashed_baseline(
    algorithm, claimed, threshold
):
    config = config_for(
        algorithm, **({"batch_max": 3} if algorithm == "batched-sweep" else {})
    )
    baseline = run_sharded(config, **RUN_ARGS)
    shard = kill_shard_of(baseline)
    result = run_sharded(
        config, replicas=1,
        failover=FailoverSpec(shard=shard, **threshold),
        **RUN_ARGS,
    )
    assert result.promotions == {shard: f"sh{shard}r1"}
    assert result.verified_at(claimed)
    assert result.deliveries_total == baseline.deliveries_total
    assert set(result.final_views) == set(baseline.final_views)
    for name, view in baseline.final_views.items():
        assert canonical_view_bytes(result.final_views[name]) == (
            canonical_view_bytes(view)
        ), f"view {name} diverged after promotion"


def test_failover_over_tcp_transport():
    config = config_for("sweep", n_updates=8)
    baseline = run_sharded(config, **RUN_ARGS)
    shard = kill_shard_of(baseline)
    result = run_sharded(
        config, replicas=1,
        failover=FailoverSpec(shard=shard, after_deliveries=2),
        **{**RUN_ARGS, "transport": "tcp"},
    )
    assert result.promotions == {shard: f"sh{shard}r1"}
    assert result.verified_at(ConsistencyLevel.COMPLETE)
    for name, view in baseline.final_views.items():
        assert canonical_view_bytes(result.final_views[name]) == (
            canonical_view_bytes(view)
        )


def test_report_names_replicas_and_promotions():
    config = config_for("sweep", n_updates=6)
    shard = kill_shard_of(run_sharded(config, **RUN_ARGS))
    result = run_sharded(
        config, replicas=1,
        failover=FailoverSpec(shard=shard, after_installs=1),
        **RUN_ARGS,
    )
    report = result.report()
    assert "1 standby(s)" in report
    assert f"shard {shard} -> sh{shard}r1" in report


# ---------------------------------------------------------------------------
# Mutation: an unfenced takeover must fail the oracle
# ---------------------------------------------------------------------------

def test_unfenced_replay_mutation_fails_the_oracle():
    """Replaying the dead primary's in-flight frame breaks consistency.

    Insert-only workload so the duplicate lands as a double count rather
    than a NegativeCountError -- the oracle, not a crash, must be what
    catches it.
    """
    config = config_for("sweep", insert_fraction=1.0)
    baseline = run_sharded(config, **RUN_ARGS)
    shard = kill_shard_of(baseline)
    mutated = run_sharded(
        config, replicas=1,
        failover=FailoverSpec(
            shard=shard, after_deliveries=3, unfenced_replay=True
        ),
        **RUN_ARGS,
    )
    assert mutated.promotions == {shard: f"sh{shard}r1"}
    assert not mutated.verified_at(ConsistencyLevel.COMPLETE)
    assert any(
        canonical_view_bytes(mutated.final_views[name])
        != canonical_view_bytes(view)
        for name, view in baseline.final_views.items()
    ), "duplicate frame left every view byte-equal -- mutation not observed"


def test_unfenced_replay_fails_the_batched_completeness_check():
    # Under batching the duplicate surfaces in batch attribution: some
    # install's content no longer matches its delivery-order prefix.
    config = config_for("batched-sweep", insert_fraction=1.0, batch_max=3)
    shard = kill_shard_of(run_sharded(config, **RUN_ARGS))
    mutated = run_sharded(
        config, replicas=1,
        failover=FailoverSpec(
            shard=shard, after_deliveries=3, unfenced_replay=True
        ),
        **RUN_ARGS,
    )
    assert not mutated.verified_at(ConsistencyLevel.STRONG)
    checks = {
        name: recorder.check_batched()
        for name, recorder in mutated.recorders.items()
    }
    bad = [name for name, check in checks.items() if not check.ok]
    assert bad, "batched completeness check missed the duplicated frame"
    assert set(bad) <= {
        view.name for view in mutated.plan.views_for(shard)
    }, "the duplicate leaked beyond the killed shard's views"


# ---------------------------------------------------------------------------
# Supervisor promotion bookkeeping (no real processes)
# ---------------------------------------------------------------------------

class FakeProc:
    def __init__(self, code=None):
        self.code = code

    def poll(self):
        return self.code

    def communicate(self):
        return "", ""


def supervisor_with_pair(primary_code=None, standby_code=None):
    sup = ShardSupervisor()
    sup.procs["shard0"] = FakeProc(primary_code)
    sup.procs["shard0r1"] = FakeProc(standby_code)
    sup.standby_of["shard0r1"] = "shard0"
    return sup


def test_supervisor_promotes_standby_on_primary_crash():
    sup = supervisor_with_pair(primary_code=-9)
    assert sup._try_failover("shard0", -9)
    assert sup.promoted == {"shard0": "shard0r1"}
    assert "shard0" not in sup.procs
    assert "shard0r1" not in sup.standby_of
    assert any("promoted standby shard0r1" in line for line in sup.failover_log)


def test_supervisor_tolerates_standby_crash_with_healthy_primary():
    sup = supervisor_with_pair(standby_code=-9)
    assert sup._try_failover("shard0r1", -9)
    assert sup.promoted == {}
    assert "shard0r1" not in sup.procs
    assert any("tolerated" in line for line in sup.failover_log)


def test_supervisor_never_promotes_over_a_clean_failure():
    # Exit 3 is a verification failure: it reproduces on the standby
    # too, so promotion would just hide a wrong answer.
    sup = supervisor_with_pair(primary_code=3)
    assert not sup._try_failover("shard0", 3)
    assert sup.promoted == {}
    assert "shard0" in sup.procs


def test_supervisor_does_not_promote_a_dead_standby():
    sup = supervisor_with_pair(primary_code=-9, standby_code=-15)
    assert not sup._try_failover("shard0", -9)
    assert sup.promoted == {}


def test_supervisor_rejects_standby_for_unknown_primary():
    sup = ShardSupervisor()
    with pytest.raises(ValueError, match="unknown process"):
        sup.launch("ghost-standby", ["true"], standby_for="nope")
