"""AsyncRuntime drives unchanged simulation processes over a real loop."""

import asyncio

import pytest

from repro.runtime import AsyncRuntime, QuiescenceTimeout
from repro.simulation.mailbox import Mailbox
from repro.simulation.process import Delay


def run(coro):
    return asyncio.run(coro)


def test_requires_running_loop():
    with pytest.raises(RuntimeError):
        AsyncRuntime()


def test_rejects_nonpositive_time_scale():
    async def main():
        AsyncRuntime(time_scale=0.0)

    with pytest.raises(ValueError):
        run(main())


def test_drives_generator_process_with_delay_and_mailbox():
    """The simulator's process vocabulary (Delay/Get) works verbatim."""

    async def main():
        runtime = AsyncRuntime(time_scale=0.001)
        box = Mailbox(runtime, "box")
        log = []

        def consumer():
            yield Delay(5.0)
            log.append(("woke", round(runtime.now)))
            msg = yield box.get()
            log.append(("got", msg))
            msg = yield box.get()
            log.append(("got", msg))

        process = runtime.spawn("consumer", consumer())
        box.put("a")
        await runtime.sleep(6.0)
        box.put("b")
        await runtime.wait_until(lambda: process.finished, timeout=5.0)
        await runtime.aclose()
        return log

    log = run(main())
    assert log[0][0] == "woke" and log[0][1] >= 5
    assert log[1:] == [("got", "a"), ("got", "b")]


def test_now_advances_in_virtual_units():
    async def main():
        runtime = AsyncRuntime(time_scale=0.001)
        await runtime.sleep(10.0)
        return runtime.now

    now = run(main())
    assert 10.0 <= now < 100.0  # ~10 virtual units, generous upper bound


def test_scheduled_callback_failure_surfaces_in_wait_until():
    async def main():
        runtime = AsyncRuntime(time_scale=0.001)

        def boom():
            raise RuntimeError("scheduled failure")

        runtime.schedule(0.0, boom)
        await runtime.wait_until(lambda: False, timeout=5.0)

    with pytest.raises(RuntimeError, match="scheduled failure"):
        run(main())


def test_process_failure_surfaces_in_wait_until():
    async def main():
        runtime = AsyncRuntime(time_scale=0.001)

        def bad():
            yield Delay(0.1)
            raise ValueError("process failure")

        runtime.spawn("bad", bad())
        await runtime.wait_until(lambda: False, timeout=5.0)

    with pytest.raises(ValueError, match="process failure"):
        run(main())


def test_wait_until_timeout_raises_quiescence_timeout():
    async def main():
        runtime = AsyncRuntime(time_scale=0.001)
        await runtime.wait_until(lambda: False, timeout=0.05)

    with pytest.raises(QuiescenceTimeout):
        run(main())


def test_settled_tracks_blocked_and_finished_processes():
    async def main():
        runtime = AsyncRuntime(time_scale=0.001)
        box = Mailbox(runtime, "box")

        def waiter():
            yield box.get()

        process = runtime.spawn("waiter", waiter())
        await runtime.wait_until(runtime.settled, timeout=5.0)
        blocked = [p.name for p in runtime.blocked_processes()]
        box.put("done")
        await runtime.wait_until(lambda: process.finished, timeout=5.0)
        return blocked, runtime.settled()

    blocked, settled = run(main())
    assert blocked == ["waiter"]
    assert settled


def test_schedule_rejects_negative_delay():
    async def main():
        runtime = AsyncRuntime(time_scale=0.001)
        with pytest.raises(ValueError):
            runtime.schedule(-1.0, lambda: None)

    run(main())
