"""Mixed-version fleets negotiate down and stay exactly consistent.

The handshake promise: ``--codec-version`` is a *speak-at-most* knob in
both directions.  A warehouse configured for the binary codec (v3) must
interoperate with a source that only speaks v1 -- the per-channel
handshake settles on the pairwise minimum, and the run's result (final
view, oracle verdict) is indistinguishable from a single-version fleet.
"""

import pytest

from repro.consistency.levels import ConsistencyLevel
from repro.harness.config import ExperimentConfig
from repro.harness.runner import run_experiment
from repro.runtime import TcpChannelConfig, run_distributed


def _config(**overrides):
    base = dict(
        algorithm="sweep",
        n_sources=3,
        n_updates=10,
        seed=42,
        mean_interarrival=5.0,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def _session_versions(counters):
    return {
        int(name.rsplit("v", 1)[1]): count
        for name, count in counters.items()
        if name.startswith("wire_sessions_v") and count
    }


def test_v3_warehouse_with_v1_only_sources_downgrades_and_completes():
    config = _config()
    baseline = run_experiment(config)
    result = run_distributed(
        config,
        transport="tcp",
        time_scale=0.001,
        timeout=60.0,
        tcp_config=TcpChannelConfig(codec_version=3),
        source_tcp_config=TcpChannelConfig(codec_version=1),
    )
    # Every session settled on v1: the sources advertise at most 1, and
    # their listeners cap the warehouse's v3 hello the same way.
    assert set(_session_versions(result.metrics.counters)) == {1}
    assert result.final_view == baseline.final_view
    assert result.recorder.updates_delivered == config.n_updates
    assert result.classified_level == ConsistencyLevel.COMPLETE


@pytest.mark.parametrize(
    "warehouse_v,source_v,expect",
    [(3, 3, 3), (3, 2, 2), (2, 3, 2), (1, 3, 1)],
)
def test_pairwise_minimum_wins(warehouse_v, source_v, expect):
    result = run_distributed(
        _config(n_updates=4),
        transport="tcp",
        time_scale=0.001,
        timeout=60.0,
        tcp_config=TcpChannelConfig(codec_version=warehouse_v),
        source_tcp_config=TcpChannelConfig(codec_version=source_v),
    )
    assert set(_session_versions(result.metrics.counters)) == {expect}
    assert result.classified_level == ConsistencyLevel.COMPLETE


def test_uniform_v3_fleet_is_oracle_equivalent_to_v2():
    config = _config()
    runs = {
        version: run_distributed(
            config,
            transport="tcp",
            time_scale=0.001,
            timeout=60.0,
            tcp_config=TcpChannelConfig(codec_version=version),
        )
        for version in (2, 3)
    }
    assert runs[2].final_view == runs[3].final_view
    for result in runs.values():
        assert result.classified_level == ConsistencyLevel.COMPLETE
    assert set(_session_versions(runs[3].metrics.counters)) == {3}
