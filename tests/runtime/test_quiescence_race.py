"""Regression: warehouse-internal backlogs must block quiescence.

The distributed driver's quiescence poll can only see inboxes and
transport channels; anything an algorithm parks in its own mailboxes
(the UpdateMessageQueue, buffered answers mid-sweep) is invisible from
outside.  A saturated run used to be declared finished while such a
backlog still existed, truncating the tail of the update stream.  The
fix is :meth:`WarehouseBase.pending_work`, consulted by both quiescence
checks -- these tests pin the visibility rule and replay the original
saturated-arrival scenario end to end.
"""

import pytest

from repro.consistency.levels import ConsistencyLevel
from repro.harness.config import ExperimentConfig
from repro.runtime import run_distributed
from repro.runtime.distributed import _System
from repro.simulation.channel import Message
from repro.simulation.kernel import Simulator
from repro.simulation.mailbox import Mailbox
from repro.sources.memory import MemoryBackend
from repro.warehouse.base import WarehouseBase
from repro.warehouse.sweep import SweepWarehouse


# ---------------------------------------------------------------------------
# Unit: what counts as pending work
# ---------------------------------------------------------------------------

def make_warehouse(paper_view, paper_states):
    sim = Simulator()
    inbox = Mailbox(sim, "wh-inbox")
    return SweepWarehouse(
        sim,
        paper_view,
        query_channels={},
        initial_view=paper_view.evaluate(paper_states),
        inbox=inbox,
    )


class TestPendingWorkVisibility:
    def test_idle_warehouse_reports_none(self, paper_view, paper_states):
        warehouse = make_warehouse(paper_view, paper_states)
        assert not warehouse.pending_work()

    def test_queued_update_is_pending_work(self, paper_view, paper_states):
        warehouse = make_warehouse(paper_view, paper_states)
        warehouse.update_queue.put(Message("update", "R1", object()))
        assert warehouse.pending_work()

    def test_buffered_answer_is_pending_work(self, paper_view, paper_states):
        warehouse = make_warehouse(paper_view, paper_states)
        warehouse._answer_box.put((Message("answer", "R1", object()), ()))
        assert warehouse.pending_work()

    def test_base_warehouse_defaults_to_no_internal_state(
        self, paper_view, paper_states
    ):
        sim = Simulator()
        # construction must not require an internal queue
        MemoryBackend(paper_view, 1, paper_states["R1"])

        class Minimal(WarehouseBase):
            pass

        warehouse = Minimal(
            sim,
            paper_view,
            query_channels={},
            initial_view=paper_view.evaluate(paper_states),
            inbox=Mailbox(sim, "wh-inbox"),
        )
        assert not warehouse.pending_work()


def test_driver_quiescence_consults_pending_work():
    """The distributed driver must refuse quiescence on internal backlog
    even when every channel and mailbox it *can* see is drained."""

    class StubWarehouse:
        def __init__(self):
            self.pending = True

        def pending_work(self):
            return self.pending

    system = _System()
    system.warehouse = StubWarehouse()
    assert not system.quiescent()
    system.warehouse.pending = False
    assert system.quiescent()


# ---------------------------------------------------------------------------
# End to end: the original race -- saturated arrivals, batching scheduler
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("algorithm", ["sweep", "batched-sweep"])
@pytest.mark.parametrize("seed", [0, 1])
def test_saturated_run_installs_every_update(algorithm, seed):
    """Arrivals far faster than a sweep's round trip keep the internal
    queue non-empty almost continuously; before pending_work() the driver
    could declare this run finished mid-backlog."""
    config = ExperimentConfig(
        algorithm=algorithm,
        n_sources=3,
        n_updates=16,
        seed=seed,
        mean_interarrival=0.5,  # saturated: >> sweep round-trip rate
        check_consistency=True,
    )
    result = run_distributed(
        config, transport="local", time_scale=0.001, timeout=120.0
    )
    assert result.updates_delivered == 16
    # every delivered update made it into an install: nothing truncated
    final_vector = result.recorder.snapshots.snapshots[-1].claimed_vector
    assert sum(final_vector.values()) == 16
    verdict = result.recorder.check_batched()
    assert verdict.ok, verdict.detail
    claimed = result.info.claimed_consistency
    assert result.classified_level >= min(claimed, ConsistencyLevel.STRONG)
