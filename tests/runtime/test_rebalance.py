"""Live shard rebalancing: drain/handoff/re-route equivalence.

The center of gravity is the equivalence claim: sealing a view on its
donor shard mid-run, handing its state to another shard and re-routing
behind a fencing epoch must yield final views byte-equal to a run that
never migrated, with the scheduler's claimed consistency level intact.
The mutation test pins the straggler-forwarding argument from the other
side -- a donor that drops its post-seal gap copies leaves delivery
holes the oracle must see (via ``missing_deliveries``; the skipped
deltas often join to nothing, so snapshot checks alone cannot).
"""

import pytest

from repro.consistency.levels import ConsistencyLevel
from repro.harness.config import ExperimentConfig
from repro.runtime import FailoverSpec, RebalanceSpec, run_sharded
from repro.runtime.errors import RuntimeHostError
from repro.warehouse.sharding import canonical_view_bytes


def config_for(algorithm, **overrides):
    base = dict(
        algorithm=algorithm,
        n_sources=3,
        n_updates=12,
        seed=7,
        mean_interarrival=6.0,
        n_views=4,
        check_consistency=True,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


RUN_ARGS = dict(
    n_shards=2, transport="local", time_scale=0.001,
    timeout=60.0, strategy="round-robin",
)

#: round-robin over 2 shards puts V, V#s2 on shard 0 -- so V#s2 is the
#: canonical migratable (non-primary) view, moving 0 -> 1.
MOVE = dict(view="V#s2", to_shard=1)


def assert_views_equal(result, baseline):
    assert set(result.final_views) == set(baseline.final_views)
    for name, view in baseline.final_views.items():
        assert canonical_view_bytes(result.final_views[name]) == (
            canonical_view_bytes(view)
        ), f"view {name} diverged after migration"


# ---------------------------------------------------------------------------
# RebalanceSpec validation and host-level refusals
# ---------------------------------------------------------------------------

def test_rebalance_spec_requires_exactly_one_threshold():
    with pytest.raises(ValueError):
        RebalanceSpec(**MOVE)
    with pytest.raises(ValueError):
        RebalanceSpec(**MOVE, after_installs=1, after_deliveries=1)
    with pytest.raises(ValueError):
        RebalanceSpec(**MOVE, after_deliveries=0)
    spec = RebalanceSpec(**MOVE, after_installs=2)
    assert spec.view == "V#s2" and not spec.skip_straggler_forwarding


def test_rebalance_rejects_durability_combo(tmp_path):
    config = config_for("sweep")
    with pytest.raises(ValueError, match="durability"):
        run_sharded(
            config, durable_dir=str(tmp_path),
            rebalance=RebalanceSpec(**MOVE, after_installs=1),
            **RUN_ARGS,
        )


def test_rebalance_rejects_primary_view():
    config = config_for("sweep")
    with pytest.raises(ValueError, match="primary"):
        run_sharded(
            config,
            rebalance=RebalanceSpec(
                view="V", to_shard=1, after_installs=1
            ),
            **RUN_ARGS,
        )


def test_trigger_that_never_fires_fails_the_run():
    # Threshold far beyond the workload: the run would silently degrade
    # into a no-op migration test, so the host refuses to pass it.
    config = config_for("sweep", n_updates=4)
    with pytest.raises(RuntimeHostError, match="never fired"):
        run_sharded(
            config,
            rebalance=RebalanceSpec(**MOVE, after_deliveries=10_000),
            **RUN_ARGS,
        )


# ---------------------------------------------------------------------------
# Migration equivalence at each protocol point
# ---------------------------------------------------------------------------

@pytest.mark.parametrize(
    "algorithm,claimed",
    [
        ("sweep", ConsistencyLevel.COMPLETE),
        ("batched-sweep", ConsistencyLevel.STRONG),
    ],
)
@pytest.mark.parametrize(
    "threshold",
    [
        {"after_installs": 1},
        {"after_deliveries": 2},
        {"after_deliveries": 8},
    ],
    ids=["mid-batch", "mid-compensation", "late-drain"],
)
def test_migrated_run_matches_static_baseline(algorithm, claimed, threshold):
    config = config_for(
        algorithm, **({"batch_max": 3} if algorithm == "batched-sweep" else {})
    )
    baseline = run_sharded(config, **RUN_ARGS)
    result = run_sharded(
        config, rebalance=RebalanceSpec(**MOVE, **threshold), **RUN_ARGS,
    )
    assert result.plan.shard_of("V#s2") == 1, "plan must show the new home"
    assert result.rebalance_stats["completed"]
    assert result.verified_at(claimed)
    assert_views_equal(result, baseline)
    assert result.recorders["V#s2"].missing_deliveries() == {}


def test_rebalance_over_tcp_transport():
    config = config_for("sweep", n_updates=8)
    baseline = run_sharded(config, **RUN_ARGS)
    result = run_sharded(
        config, rebalance=RebalanceSpec(**MOVE, after_deliveries=3),
        **{**RUN_ARGS, "transport": "tcp"},
    )
    assert result.verified_at(ConsistencyLevel.COMPLETE)
    assert result.rebalance_stats["completed"]
    assert_views_equal(result, baseline)


def test_rebalance_stats_and_report():
    config = config_for("sweep")
    result = run_sharded(
        config, rebalance=RebalanceSpec(**MOVE, after_deliveries=2),
        **RUN_ARGS,
    )
    stats = result.rebalance_stats
    assert stats["view"] == "V#s2"
    assert (stats["from_shard"], stats["to_shard"]) == (0, 1)
    assert stats["fired"] and stats["epoch"] == 1
    # One fence boundary per source, taken at fire time.
    assert sorted(stats["boundaries"]) == [1, 2, 3]
    roles = {m: s["role"] for m, s in stats["members"].items()}
    assert roles == {"sh0": "donor", "sh1": "recipient"}
    assert stats["members"]["sh1"]["catchup_done"]
    assert "rebalance" in result.report()
    assert "'V#s2' shard 0 -> 1" in result.report()


# ---------------------------------------------------------------------------
# Mutation: dropping the straggler window must be caught
# ---------------------------------------------------------------------------

def test_straggler_skipping_mutation_leaves_delivery_holes():
    """A donor that skips gap forwarding loses the (P, B] window.

    The skipped deltas may join to nothing, leaving every snapshot
    byte-identical -- so the catch is delivery-completeness, not view
    contents: the migrated view's recorder must report the exact
    source sequence numbers that never reached it.
    """
    config = config_for("sweep", seed=1)
    result = run_sharded(
        config,
        rebalance=RebalanceSpec(
            **MOVE, after_deliveries=2, skip_straggler_forwarding=True
        ),
        **RUN_ARGS,
    )
    stats = result.rebalance_stats
    assert stats["gap_skipped"] >= 1, "mutation vacuous: empty gap window"
    missing = result.recorders["V#s2"].missing_deliveries()
    assert missing, "oracle missed the dropped straggler window"
    assert sum(len(seqs) for seqs in missing.values()) >= stats["gap_skipped"]
    # Views that never migrated keep complete delivery records.
    for name, recorder in result.recorders.items():
        if name != "V#s2":
            assert recorder.missing_deliveries() == {}


# ---------------------------------------------------------------------------
# ReplicaPlan x rebalancing: standby subscriptions move too
# ---------------------------------------------------------------------------

def test_rebalance_moves_standby_subscription():
    config = config_for("sweep")
    baseline = run_sharded(config, **RUN_ARGS)
    result = run_sharded(
        config, replicas=1,
        rebalance=RebalanceSpec(**MOVE, after_deliveries=2),
        **RUN_ARGS,
    )
    stats = result.rebalance_stats
    roles = {m: s["role"] for m, s in stats["members"].items()}
    assert roles == {
        "sh0": "donor", "sh0r1": "donor",
        "sh1": "recipient", "sh1r1": "recipient",
    }
    # The standby pair ran the same seal/adopt protocol as the primaries.
    assert stats["members"]["sh1r1"]["catchup_done"]
    assert stats["completed"]
    assert_views_equal(result, baseline)


def test_failover_still_promotes_after_migration():
    """Kill the recipient's primary after the migration has completed.

    The promoted standby must own the migrated view -- its subscription,
    recorder and state moved during the handoff -- and serve it
    byte-equal to the never-migrated, never-crashed baseline.
    """
    config = config_for("sweep")
    baseline = run_sharded(config, **RUN_ARGS)
    result = run_sharded(
        config, replicas=1,
        rebalance=RebalanceSpec(**MOVE, after_installs=1),
        failover=FailoverSpec(shard=1, after_deliveries=9),
        **RUN_ARGS,
    )
    assert result.promotions == {1: "sh1r1"}
    assert result.plan.shard_of("V#s2") == 1
    assert result.verified_at(ConsistencyLevel.COMPLETE)
    assert_views_equal(result, baseline)
    assert result.recorders["V#s2"].missing_deliveries() == {}
