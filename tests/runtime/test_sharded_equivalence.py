"""Randomized sharded-vs-single equivalence (byte-identical final views).

Partitioning the view set must be invisible in the final states: for any
seed, the sharded run's every view must match the single-warehouse run's
same view byte for byte (:func:`canonical_view_bytes`), because both
converge to the views over the final source states, which depend only on
the workload.  The 30-seed sweep varies shard count (2, 4), transport
(LocalChannel, TCP) and chaos profile (healthy, delay, dup) together, so
every combination appears several times across the matrix.
"""

import pytest

from repro.consistency.levels import ConsistencyLevel
from repro.harness.config import ExperimentConfig
from repro.runtime import run_sharded
from repro.warehouse.sharding import canonical_view_bytes

SEEDS = range(30)


def _case(seed):
    """Deterministic (n_shards, transport, chaos) mix over the seed space."""
    n_shards = (2, 4)[seed % 2]
    transport = ("local", "tcp")[(seed // 2) % 2]
    chaos = (None, "delay", "dup")[(seed // 4) % 3]
    return n_shards, transport, chaos


def _canonical(result):
    return {
        name: canonical_view_bytes(view)
        for name, view in result.final_views.items()
    }


def _config(seed, algorithm="sweep", **overrides):
    base = dict(
        algorithm=algorithm,
        n_sources=3,
        n_updates=6,
        seed=seed,
        mean_interarrival=2.0,
        n_views=4,
        check_consistency=True,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


@pytest.mark.parametrize("seed", SEEDS)
def test_sharded_final_views_match_single_warehouse(seed):
    n_shards, transport, chaos = _case(seed)
    config = _config(seed)
    baseline = run_sharded(
        config, n_shards=1, transport="local", time_scale=0.001,
        timeout=60.0, strategy="round-robin",
    )
    sharded = run_sharded(
        config, n_shards=n_shards, transport=transport, time_scale=0.001,
        timeout=60.0, chaos=chaos, strategy="round-robin",
    )
    assert _canonical(sharded) == _canonical(baseline)
    assert sharded.verified_at(ConsistencyLevel.COMPLETE)
    if chaos is not None:
        assert sharded.chaos_profile == chaos


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_batched_sharded_final_views_match_single_warehouse(seed):
    """The batched scheduler shards to the same states (strong per view)."""
    n_shards, transport, chaos = _case(seed)
    config = _config(seed, algorithm="batched-sweep", batch_max=3)
    baseline = run_sharded(
        config, n_shards=1, transport="local", time_scale=0.001,
        timeout=60.0, strategy="round-robin",
    )
    sharded = run_sharded(
        config, n_shards=n_shards, transport=transport, time_scale=0.001,
        timeout=60.0, chaos=chaos, strategy="round-robin",
    )
    assert _canonical(sharded) == _canonical(baseline)
    assert sharded.verified_at(ConsistencyLevel.STRONG)


def test_hash_and_round_robin_strategies_agree():
    """Placement strategy cannot change any view's final contents."""
    config = _config(9)
    by_hash = run_sharded(
        config, n_shards=2, transport="local", time_scale=0.001,
        timeout=60.0, strategy="hash",
    )
    by_rr = run_sharded(
        config, n_shards=2, transport="local", time_scale=0.001,
        timeout=60.0, strategy="round-robin",
    )
    assert _canonical(by_hash) == _canonical(by_rr)
