"""Sharded warehouse runtime: per-shard consistency and process control.

A sharded run must inherit each scheduler's single-warehouse guarantee
per view -- the router only splits the view set, never a view -- so
SWEEP shards verify complete and batched-sweep shards verify strong,
on both transports.  The supervisor tests pin the crash contract:
one failing shard process takes the fleet down with
:class:`ShardCrashed`, never a silent success.
"""

import sys

import pytest

from repro.consistency.levels import ConsistencyLevel
from repro.harness.config import ExperimentConfig
from repro.runtime import (
    ShardCrashed,
    ShardSupervisor,
    launch_sharded_processes,
    run_sharded,
)


def config_for(algorithm, **overrides):
    base = dict(
        algorithm=algorithm,
        n_sources=3,
        n_updates=8,
        seed=42,
        mean_interarrival=2.0,
        n_views=4,
        check_consistency=True,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def test_sweep_sharded_is_complete_per_view():
    config = config_for("sweep")
    result = run_sharded(
        config, n_shards=2, transport="local", time_scale=0.001,
        timeout=60.0, strategy="round-robin",
    )
    assert len(result.final_views) == 4
    assert result.plan.active_shards == [0, 1]
    assert result.updates_total == config.n_updates
    # Every relation appears in every view, so each shard sees each update.
    assert result.deliveries_total == 2 * config.n_updates
    assert set(result.levels) == set(result.final_views)
    assert all(
        level == ConsistencyLevel.COMPLETE for level in result.levels.values()
    )
    assert result.verified_at(ConsistencyLevel.COMPLETE)
    assert result.min_level() == ConsistencyLevel.COMPLETE


def test_batched_sharded_is_strong_per_view():
    config = config_for("batched-sweep", batch_max=4)
    result = run_sharded(
        config, n_shards=2, transport="local", time_scale=0.001,
        timeout=60.0, strategy="round-robin",
    )
    assert result.verified_at(ConsistencyLevel.STRONG)


def test_sweep_sharded_over_tcp():
    config = config_for("sweep", n_updates=6)
    result = run_sharded(
        config, n_shards=2, transport="tcp", time_scale=0.001,
        timeout=60.0, strategy="round-robin",
    )
    assert result.verified_at(ConsistencyLevel.COMPLETE)
    assert result.transport == "tcp"


def test_four_shards_with_adaptive_batching():
    config = config_for(
        "batched-sweep", batch_max=4, batch_adaptive=True, n_updates=12,
        mean_interarrival=0.05,
    )
    result = run_sharded(
        config, n_shards=4, transport="local", time_scale=0.001,
        timeout=60.0, strategy="round-robin",
    )
    assert result.verified_at(ConsistencyLevel.STRONG)
    assert len(result.plan.active_shards) == 4


def test_single_shard_degenerates_to_multiview_warehouse():
    config = config_for("sweep", n_updates=6)
    result = run_sharded(
        config, n_shards=1, transport="local", time_scale=0.001, timeout=60.0,
    )
    assert result.plan.active_shards == [0]
    assert result.verified_at(ConsistencyLevel.COMPLETE)


def test_report_names_plan_views_and_verdicts():
    config = config_for("sweep", n_updates=4)
    result = run_sharded(
        config, n_shards=2, transport="local", time_scale=0.001,
        timeout=60.0, strategy="round-robin",
    )
    text = result.report()
    assert "2 shard(s)" in text
    assert "complete" in text
    for name in result.final_views:
        assert name in text


# ---------------------------------------------------------------------------
# Process supervision
# ---------------------------------------------------------------------------

def test_supervisor_raises_shard_crashed_on_nonzero_exit():
    supervisor = ShardSupervisor()
    supervisor.launch(
        "shard-0",
        [sys.executable, "-c", "import sys; sys.exit(3)"],
    )
    with pytest.raises(ShardCrashed, match="shard-0"):
        supervisor.wait(timeout=30.0)


def test_supervisor_crash_includes_stderr_tail():
    supervisor = ShardSupervisor()
    supervisor.launch(
        "shard-1",
        [
            sys.executable,
            "-c",
            "import sys; print('boom detail', file=sys.stderr); sys.exit(2)",
        ],
    )
    with pytest.raises(ShardCrashed, match="boom detail"):
        supervisor.wait(timeout=30.0)


def test_supervisor_collects_clean_fleet_output():
    supervisor = ShardSupervisor()
    supervisor.launch("a", [sys.executable, "-c", "print('ok-a')"])
    supervisor.launch("b", [sys.executable, "-c", "print('ok-b')"])
    outputs = supervisor.wait(timeout=30.0)
    assert outputs["a"].strip() == "ok-a"
    assert outputs["b"].strip() == "ok-b"


def test_multiprocess_sharded_deployment_verifies():
    """2 shard + 3 source processes: clean exit implies per-shard verification."""
    config = config_for("sweep", n_updates=4, n_views=2, mean_interarrival=1.0)
    outputs = launch_sharded_processes(
        config, n_shards=2, time_scale=0.005, strategy="round-robin",
        timeout=180.0,
    )
    assert outputs  # every process exited zero (shards verify before exiting)
