"""TCP fast path: frame compression, multi-message frames, negotiation.

Covers the transport-level throughput work in isolation from the
protocol: the MSB-flagged zlib frame encoding roundtrips through real
stream objects, bursts of queued messages coalesce into one ``mb`` frame
when both ends speak codec v2, and a v1 peer on either side of the
handshake downgrades the channel cleanly.
"""

import asyncio
import struct

import pytest

from repro.relational.delta import Delta
from repro.runtime import (
    AsyncRuntime,
    ChannelListener,
    TcpChannel,
    TcpChannelConfig,
    WireCodec,
)
from repro.runtime.tcp import read_frame, write_frame
from repro.simulation.channel import Message
from repro.sources.messages import UpdateNotice


class Sink:
    def __init__(self):
        self.items = []

    def put(self, message):
        self.items.append(message)

    def __len__(self):
        return len(self.items)


class BufferWriter:
    """StreamWriter stand-in that accumulates written bytes."""

    def __init__(self):
        self.data = bytearray()

    def write(self, chunk):
        self.data.extend(chunk)


def make_notice(view, seq, rows=None):
    return UpdateNotice(
        source_index=1,
        seq=seq,
        delta=Delta(view.schema_of(1), rows or {(seq, seq): 1}),
        applied_at=float(seq),
    )


def seqs(sink):
    return [m.payload.seq for m in sink.items]


def run(coro):
    return asyncio.run(coro)


def decode_frame(data: bytes) -> dict:
    """Feed raw bytes through a real StreamReader and read one frame."""

    async def main():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_frame(reader)

    return run(main())


# ---------------------------------------------------------------------------
# Frame encoding
# ---------------------------------------------------------------------------

def test_large_frame_is_compressed_and_roundtrips():
    obj = {"t": "msg", "rows": [[i, i, 1] for i in range(500)]}
    writer = BufferWriter()
    write_frame(writer, obj, compress_min=64)
    (prefix,) = struct.unpack(">I", bytes(writer.data[:4]))
    assert prefix & 0x80000000  # MSB marks the zlib body
    assert decode_frame(bytes(writer.data)) == obj


def test_small_frame_stays_uncompressed():
    obj = {"t": "ack", "seq": 4}
    writer = BufferWriter()
    write_frame(writer, obj, compress_min=64)
    (prefix,) = struct.unpack(">I", bytes(writer.data[:4]))
    assert not prefix & 0x80000000
    assert decode_frame(bytes(writer.data)) == obj


def test_incompressible_frame_falls_back_to_plain():
    """When zlib cannot shrink the body the plain encoding is kept."""
    obj = {"t": "x9Qz"}  # tiny body: zlib's header overhead always loses
    writer = BufferWriter()
    write_frame(writer, obj, compress_min=1)
    (prefix,) = struct.unpack(">I", bytes(writer.data[:4]))
    assert not prefix & 0x80000000
    assert decode_frame(bytes(writer.data)) == obj


def test_compression_disabled_with_none():
    obj = {"t": "msg", "rows": [[i, i, 1] for i in range(500)]}
    writer = BufferWriter()
    write_frame(writer, obj, compress_min=None)
    (prefix,) = struct.unpack(">I", bytes(writer.data[:4]))
    assert not prefix & 0x80000000


def body_of_length(n):
    """An object whose canonical JSON body is exactly ``n`` bytes and
    compressible (a run of one character)."""
    obj = {"p": "a" * (n - 8)}  # {"p":"..."} wraps the run in 8 bytes
    import json

    assert len(json.dumps(obj, separators=(",", ":")).encode()) == n
    return obj


@pytest.mark.parametrize(
    "body_len,expect_compressed",
    [(63, False), (64, True), (65, True)],
)
def test_compression_threshold_is_inclusive(body_len, expect_compressed):
    """Bodies of exactly ``compress_min`` bytes compress; one byte below
    stays plain -- the boundary must not drift between codec versions."""
    obj = body_of_length(body_len)
    writer = BufferWriter()
    write_frame(writer, obj, compress_min=64)
    (prefix,) = struct.unpack(">I", bytes(writer.data[:4]))
    assert bool(prefix & 0x80000000) == expect_compressed
    # the prefix's low bits are the on-wire body length, flag stripped
    assert (prefix & 0x7FFFFFFF) == len(writer.data) - 4
    if expect_compressed:
        assert len(writer.data) - 4 < body_len  # it actually shrank
    assert decode_frame(bytes(writer.data)) == obj


# ---------------------------------------------------------------------------
# Multi-message frames and codec negotiation
# ---------------------------------------------------------------------------

async def _burst_over_tcp(paper_view, channel_config, n=30):
    """Send ``n`` messages in one burst; return (channel stats, seqs)."""
    runtime = AsyncRuntime(time_scale=0.001)
    codec = WireCodec(paper_view)
    sink = Sink()
    listener = ChannelListener(runtime)
    listener.register("R1->wh", sink, codec)
    await listener.start()
    channel = TcpChannel(
        runtime, "R1->wh", *listener.address, codec, None, channel_config
    )
    # No yields between sends: the writer task sees a backlog and must
    # coalesce it rather than write frame by frame.
    for seq in range(1, n + 1):
        channel.send(Message("update", "R1", make_notice(paper_view, seq)))
    await channel.flush()
    stats = {
        "negotiated_codec": channel.negotiated_codec,
        "batches_sent": channel.batches_sent,
    }
    await channel.aclose()
    await listener.aclose()
    await runtime.aclose()
    return stats, seqs(sink)


def test_burst_coalesces_into_multi_message_frames(paper_view):
    stats, got = run(_burst_over_tcp(paper_view, TcpChannelConfig()))
    assert got == list(range(1, 31))  # FIFO preserved through mb frames
    assert stats["negotiated_codec"] == 2
    assert stats["batches_sent"] >= 1


def test_v1_sender_disables_batching(paper_view):
    """A sender pinned to codec v1 never emits mb frames."""
    config = TcpChannelConfig(codec_version=1)
    stats, got = run(_burst_over_tcp(paper_view, config))
    assert got == list(range(1, 31))
    assert stats["negotiated_codec"] == 1
    assert stats["batches_sent"] == 0


def test_negotiated_codec_is_pairwise_min(paper_view):
    """The welcome clamps to min(sender, listener); absent key means v1."""

    async def main():
        runtime = AsyncRuntime(time_scale=0.001)
        codec = WireCodec(paper_view)
        listener = ChannelListener(runtime)
        listener.register("R1->wh", Sink(), codec)
        await listener.start()
        host, port = listener.address

        reader, writer = await asyncio.open_connection(host, port)
        write_frame(writer, {"t": "hello", "channel": "R1->wh", "resume": 1})
        await writer.drain()
        welcome = await read_frame(reader, timeout=5.0)
        writer.close()
        await writer.wait_closed()
        await listener.aclose()
        await runtime.aclose()
        return welcome

    welcome = run(main())
    assert welcome["t"] == "welcome"
    # Listener speaks v2 but must clamp to the hello's version (absent -> 1).
    assert welcome["codec"] == 1


def test_welcome_without_codec_key_downgrades_sender(paper_view):
    """The mirror case: a *receiver* predating negotiation omits the codec
    key from its welcome, and the v2 sender must fall back to v1 -- plain
    per-message frames, no mb batching."""

    async def main():
        frames = []

        async def legacy_receiver(reader, writer):
            hello = await read_frame(reader)
            assert hello["t"] == "hello"
            # Old receiver: acknowledges the session but says nothing
            # about codecs.
            write_frame(writer, {"t": "welcome", "expect": hello["next"]})
            await writer.drain()
            while True:
                try:
                    frame = await read_frame(reader)
                except Exception:
                    return
                frames.append(frame)
                if frame.get("t") == "msg":
                    write_frame(writer, {"t": "ack", "seq": frame["seq"]})
                    await writer.drain()

        server = await asyncio.start_server(legacy_receiver, "127.0.0.1", 0)
        host, port = server.sockets[0].getsockname()[:2]
        runtime = AsyncRuntime(time_scale=0.001)
        codec = WireCodec(paper_view)
        channel = TcpChannel(
            runtime, "R1->wh", host, port, codec, None, TcpChannelConfig()
        )
        for seq in range(1, 11):
            channel.send(Message("update", "R1", make_notice(paper_view, seq)))
        await channel.flush()
        stats = {
            "negotiated_codec": channel.negotiated_codec,
            "batches_sent": channel.batches_sent,
        }
        await channel.aclose()
        server.close()
        await server.wait_closed()
        await runtime.aclose()
        return stats, frames

    stats, frames = run(main())
    assert stats["negotiated_codec"] == 1
    assert stats["batches_sent"] == 0
    kinds = {frame["t"] for frame in frames}
    assert "mb" not in kinds  # every message crossed as a v1 frame
    assert [f["seq"] for f in frames if f["t"] == "msg"] == list(range(1, 11))
