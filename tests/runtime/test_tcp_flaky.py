"""TCP resilience: retries with backoff, reconnects, bounded failure."""

import asyncio
import socket

import pytest

from repro.relational.delta import Delta
from repro.runtime import (
    AsyncRuntime,
    ChannelListener,
    TcpChannel,
    TcpChannelConfig,
    TransportRetriesExceeded,
    WireCodec,
)
from repro.simulation.channel import Message
from repro.sources.messages import UpdateNotice


class Sink:
    def __init__(self):
        self.items = []

    def put(self, message):
        self.items.append(message)


def make_message(view, seq):
    return Message(
        "update",
        "R1",
        UpdateNotice(
            source_index=1,
            seq=seq,
            delta=Delta(view.schema_of(1), {(seq, seq): 1}),
            applied_at=float(seq),
        ),
    )


def seqs(sink):
    return [m.payload.seq for m in sink.items]


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def run(coro):
    return asyncio.run(coro)


def test_sender_retries_until_listener_appears(paper_view):
    """Messages sent before the receiver exists arrive once it starts."""

    async def main():
        runtime = AsyncRuntime(time_scale=0.001)
        codec = WireCodec(paper_view)
        port = free_port()
        config = TcpChannelConfig(
            connect_timeout=1.0, backoff_initial=0.02, max_retries=20
        )
        channel = TcpChannel(
            runtime, "R1->wh", "127.0.0.1", port, codec, None, config
        )
        for seq in (1, 2, 3):
            channel.send(make_message(paper_view, seq))
        await asyncio.sleep(0.15)  # let several dials fail first

        sink = Sink()
        listener = ChannelListener(runtime, "127.0.0.1", port)
        listener.register("R1->wh", sink, codec)
        await listener.start()
        await channel.flush(timeout=10.0)
        reconnects = channel.reconnects
        await channel.aclose()
        await listener.aclose()
        await runtime.aclose()
        return seqs(sink), reconnects

    got, reconnects = run(main())
    assert got == [1, 2, 3]
    assert reconnects >= 1  # at least one failed dial before the listener


def test_session_resumes_after_midstream_connection_kill(paper_view):
    """A proxy drops the first connection mid-stream; nothing is lost or duplicated."""

    async def main():
        runtime = AsyncRuntime(time_scale=0.001)
        codec = WireCodec(paper_view)
        sink = Sink()
        listener = ChannelListener(runtime)
        listener.register("R1->wh", sink, codec)
        await listener.start()

        # Forwarding proxy that hard-closes its first connection after a
        # few frames have passed, then forwards faithfully.
        kills_left = [1]

        async def handle_proxy(client_reader, client_writer):
            upstream_reader, upstream_writer = await asyncio.open_connection(
                *listener.address
            )
            doomed = kills_left[0] > 0
            if doomed:
                kills_left[0] -= 1
            budget = [600]  # bytes to forward before the kill

            async def pump(reader, writer, meter):
                try:
                    while True:
                        data = await reader.read(512)
                        if not data:
                            break
                        if meter and doomed:
                            budget[0] -= len(data)
                            if budget[0] <= 0:
                                break
                        writer.write(data)
                        await writer.drain()
                finally:
                    writer.close()

            await asyncio.gather(
                pump(client_reader, upstream_writer, meter=True),
                pump(upstream_reader, client_writer, meter=False),
                return_exceptions=True,
            )

        proxy = await asyncio.start_server(handle_proxy, "127.0.0.1", 0)
        proxy_port = proxy.sockets[0].getsockname()[1]

        config = TcpChannelConfig(backoff_initial=0.02, max_retries=10)
        channel = TcpChannel(
            runtime, "R1->wh", "127.0.0.1", proxy_port, codec, None, config
        )
        for seq in range(1, 31):
            channel.send(make_message(paper_view, seq))
            await asyncio.sleep(0.002)
        await channel.flush(timeout=10.0)
        reconnects = channel.reconnects
        await channel.aclose()
        proxy.close()
        await proxy.wait_closed()
        await listener.aclose()
        await runtime.aclose()
        return seqs(sink), reconnects

    got, reconnects = run(main())
    assert got == list(range(1, 31))  # exactly once, in order
    assert reconnects >= 1  # the kill really happened


def test_bounded_retries_surface_as_runtime_failure(paper_view):
    """A dead peer fails the channel after max_retries, not never."""

    async def main():
        runtime = AsyncRuntime(time_scale=0.001)
        codec = WireCodec(paper_view)
        config = TcpChannelConfig(
            connect_timeout=0.2,
            backoff_initial=0.01,
            backoff_max=0.02,
            max_retries=2,
        )
        channel = TcpChannel(
            runtime, "R1->wh", "127.0.0.1", free_port(), codec, None, config
        )
        channel.send(make_message(paper_view, 1))
        try:
            await channel.flush(timeout=10.0)
        finally:
            await channel.aclose()
            await runtime.aclose()

    with pytest.raises(TransportRetriesExceeded):
        run(main())


def test_idle_channel_does_not_dial(paper_view):
    """Lazy dialing: no frames queued means no connection attempts."""

    async def main():
        runtime = AsyncRuntime(time_scale=0.001)
        codec = WireCodec(paper_view)
        config = TcpChannelConfig(connect_timeout=0.2, max_retries=1)
        # Dead address: eager dialing would exhaust retries immediately.
        channel = TcpChannel(
            runtime, "R1->wh", "127.0.0.1", free_port(), codec, None, config
        )
        await asyncio.sleep(0.3)
        runtime.check()  # no TransportRetriesExceeded recorded
        assert channel.reconnects == 0
        await channel.aclose()
        await runtime.aclose()

    run(main())
