"""Transport guarantees: FIFO order, backpressure, flush — both transports."""

import asyncio

import pytest

from repro.relational.delta import Delta
from repro.runtime import (
    AsyncRuntime,
    ChannelListener,
    LocalChannel,
    TcpChannel,
    TcpChannelConfig,
    TransportOverflowError,
    WireCodec,
)
from repro.simulation.channel import Message
from repro.simulation.metrics import MetricsCollector
from repro.sources.messages import UpdateNotice


class Sink:
    """Mailbox stand-in that records delivery order."""

    def __init__(self):
        self.items = []

    def put(self, message):
        self.items.append(message)

    def __len__(self):
        return len(self.items)


def make_notice(view, seq):
    """An UpdateNotice whose delta row encodes ``seq`` for order checks."""
    return UpdateNotice(
        source_index=1,
        seq=seq,
        delta=Delta(view.schema_of(1), {(seq, seq): 1}),
        applied_at=float(seq),
    )


def seqs(sink):
    return [m.payload.seq for m in sink.items]


def run(coro):
    return asyncio.run(coro)


# ---------------------------------------------------------------------------
# LocalChannel
# ---------------------------------------------------------------------------

def test_local_channel_preserves_send_order(paper_view):
    async def main():
        runtime = AsyncRuntime(time_scale=0.001)
        sink = Sink()
        channel = LocalChannel(runtime, "R1->wh", sink)
        for seq in range(1, 51):
            channel.send(Message("update", "R1", make_notice(paper_view, seq)))
        await channel.flush()
        await runtime.aclose()
        return seqs(sink)

    assert run(main()) == list(range(1, 51))


def test_local_channel_fifo_under_concurrent_senders(paper_view):
    """Interleaved async producers: delivery order == send order."""

    async def main():
        runtime = AsyncRuntime(time_scale=0.001)
        sink = Sink()
        channel = LocalChannel(runtime, "R1->wh", sink)
        sent = []

        async def producer(offset):
            for i in range(25):
                seq = offset + i
                sent.append(seq)
                channel.send(
                    Message("update", "R1", make_notice(paper_view, seq))
                )
                await asyncio.sleep(0)  # force interleaving

        await asyncio.gather(producer(100), producer(200), producer(300))
        await channel.flush()
        await runtime.aclose()
        return sent, seqs(sink)

    sent, delivered = run(main())
    assert delivered == sent  # exact send order, not merely per-producer


def test_local_channel_overflow_raises(paper_view):
    async def main():
        runtime = AsyncRuntime(time_scale=0.001)
        sink = Sink()
        channel = LocalChannel(runtime, "R1->wh", sink, max_queue=4)
        # Saturate without yielding so the delivery task cannot drain.
        with pytest.raises(TransportOverflowError):
            for seq in range(1, 100):
                channel.send(
                    Message("update", "R1", make_notice(paper_view, seq))
                )
        await channel.flush()
        await runtime.aclose()
        return len(sink)

    assert run(main()) == 4  # everything accepted was still delivered


def test_local_channel_drain_paces_producer(paper_view):
    async def main():
        runtime = AsyncRuntime(time_scale=0.001)
        sink = Sink()
        channel = LocalChannel(runtime, "R1->wh", sink, max_queue=8)
        for seq in range(1, 101):
            await channel.drain()
            channel.send(Message("update", "R1", make_notice(paper_view, seq)))
        await channel.flush()
        await runtime.aclose()
        return seqs(sink)

    assert run(main()) == list(range(1, 101))


def test_local_channel_records_metrics(paper_view):
    async def main():
        runtime = AsyncRuntime(time_scale=0.001)
        metrics = MetricsCollector()
        channel = LocalChannel(runtime, "R1->wh", Sink(), metrics)
        for seq in range(1, 6):
            channel.send(Message("update", "R1", make_notice(paper_view, seq)))
        await channel.flush()
        await runtime.aclose()
        return metrics

    metrics = run(main())
    assert metrics.messages_total == 5
    assert metrics.messages_of_kind("update") == 5


# ---------------------------------------------------------------------------
# TcpChannel + ChannelListener
# ---------------------------------------------------------------------------

def test_tcp_channel_delivers_in_order(paper_view):
    async def main():
        runtime = AsyncRuntime(time_scale=0.001)
        codec = WireCodec(paper_view)
        sink = Sink()
        listener = ChannelListener(runtime)
        listener.register("R1->wh", sink, codec)
        await listener.start()
        channel = TcpChannel(
            runtime, "R1->wh", *listener.address, codec
        )
        for seq in range(1, 41):
            channel.send(Message("update", "R1", make_notice(paper_view, seq)))
        await channel.flush()
        await channel.aclose()
        await listener.aclose()
        await runtime.aclose()
        return seqs(sink)

    assert run(main()) == list(range(1, 41))


def test_tcp_fifo_under_concurrent_senders_on_two_channels(paper_view):
    """Two channels into one listener: each keeps its own FIFO order."""

    async def main():
        runtime = AsyncRuntime(time_scale=0.001)
        codec = WireCodec(paper_view)
        sink_a, sink_b = Sink(), Sink()
        listener = ChannelListener(runtime)
        listener.register("R1->wh", sink_a, codec)
        listener.register("R2->wh", sink_b, codec)
        await listener.start()
        chan_a = TcpChannel(runtime, "R1->wh", *listener.address, codec)
        chan_b = TcpChannel(runtime, "R2->wh", *listener.address, codec)

        async def produce(channel, offset):
            for i in range(30):
                channel.send(
                    Message("update", "x", make_notice(paper_view, offset + i))
                )
                await asyncio.sleep(0)

        await asyncio.gather(produce(chan_a, 100), produce(chan_b, 500))
        await chan_a.flush()
        await chan_b.flush()
        await chan_a.aclose()
        await chan_b.aclose()
        await listener.aclose()
        await runtime.aclose()
        return seqs(sink_a), seqs(sink_b)

    got_a, got_b = run(main())
    assert got_a == list(range(100, 130))
    assert got_b == list(range(500, 530))


def test_tcp_overflow_raises(paper_view):
    async def main():
        runtime = AsyncRuntime(time_scale=0.001)
        codec = WireCodec(paper_view)
        config = TcpChannelConfig(max_queue=4)
        # No listener: nothing drains, the bounded window must fill.
        channel = TcpChannel(runtime, "R1->wh", "127.0.0.1", 1, codec, None, config)
        with pytest.raises(TransportOverflowError):
            for seq in range(1, 100):
                channel.send(
                    Message("update", "R1", make_notice(paper_view, seq))
                )
        await channel.aclose()
        await runtime.aclose()

    run(main())


def test_tcp_listener_survives_channel_restart(paper_view):
    """Receiver state is per channel name: a new sender object resumes."""

    async def main():
        runtime = AsyncRuntime(time_scale=0.001)
        codec = WireCodec(paper_view)
        sink = Sink()
        listener = ChannelListener(runtime)
        listener.register("R1->wh", sink, codec)
        await listener.start()

        first = TcpChannel(runtime, "R1->wh", *listener.address, codec)
        for seq in (1, 2, 3):
            first.send(Message("update", "R1", make_notice(paper_view, seq)))
        await first.flush()
        await first.aclose()

        second = TcpChannel(runtime, "R1->wh", *listener.address, codec)
        second._next_seq = first._next_seq  # same channel, new connection
        for seq in (4, 5):
            second.send(Message("update", "R1", make_notice(paper_view, seq)))
        await second.flush()
        await second.aclose()
        await listener.aclose()
        await runtime.aclose()
        return seqs(sink), listener.connections_accepted

    got, connections = run(main())
    assert got == [1, 2, 3, 4, 5]
    assert connections == 2
