"""Unit tests for channels, latency models, mailboxes, metrics and rng."""

import random

import pytest

from repro.simulation.channel import Channel, Message
from repro.simulation.errors import MailboxOwnershipError
from repro.simulation.kernel import Simulator
from repro.simulation.latency import (
    ConstantLatency,
    ExponentialLatency,
    UniformLatency,
)
from repro.simulation.mailbox import Mailbox
from repro.simulation.metrics import MetricsCollector, estimate_size
from repro.simulation.rng import RngRegistry, derive_seed
from repro.simulation.trace import TraceLog


class TestLatencyModels:
    def test_constant(self):
        m = ConstantLatency(2.5)
        assert m.sample() == 2.5
        assert m.mean() == 2.5

    def test_constant_negative_rejected(self):
        with pytest.raises(ValueError):
            ConstantLatency(-1)

    def test_uniform_bounds(self):
        m = UniformLatency(1.0, 3.0, random.Random(1))
        samples = [m.sample() for _ in range(200)]
        assert all(1.0 <= s <= 3.0 for s in samples)
        assert m.mean() == 2.0

    def test_uniform_invalid(self):
        with pytest.raises(ValueError):
            UniformLatency(3.0, 1.0, random.Random(1))
        with pytest.raises(ValueError):
            UniformLatency(-1.0, 1.0, random.Random(1))

    def test_exponential_positive(self):
        m = ExponentialLatency(2.0, random.Random(1))
        samples = [m.sample() for _ in range(200)]
        assert all(s >= 0 for s in samples)
        assert m.mean() == 2.0

    def test_exponential_invalid(self):
        with pytest.raises(ValueError):
            ExponentialLatency(0.0, random.Random(1))


class TestChannel:
    def _wire(self, latency):
        sim = Simulator()
        box = Mailbox(sim, "dst")
        metrics = MetricsCollector()
        ch = Channel(sim, "src->dst", box, latency, metrics)
        return sim, box, ch, metrics

    def test_delivery_and_timestamps(self):
        sim, box, ch, _ = self._wire(ConstantLatency(5.0))
        got = []

        def consumer():
            msg = yield box.get()
            got.append((sim.now, msg.payload, msg.sent_at, msg.delivered_at))

        sim.spawn("c", consumer())
        ch.send(Message(kind="update", sender="s1", payload="x"))
        sim.run()
        assert got == [(5.0, "x", 0.0, 5.0)]

    def test_fifo_under_random_latency(self):
        """A later message must never overtake an earlier one."""
        sim, box, ch, _ = self._wire(UniformLatency(0.0, 10.0, random.Random(7)))
        got = []

        def consumer():
            while True:
                msg = yield box.get()
                got.append(msg.payload)

        sim.spawn("c", consumer())

        def sender(i=0):
            ch.send(Message(kind="update", sender="s", payload=i))
            if i < 49:
                sim.schedule(0.1, lambda: sender(i + 1))

        sender()
        sim.run()
        assert got == list(range(50))

    def test_metrics_recorded(self):
        sim, box, ch, metrics = self._wire(ConstantLatency(1.0))
        ch.send(Message(kind="query", sender="wh", payload=["a", "b"]))
        ch.send(Message(kind="update", sender="s1", payload=None))
        sim.run()
        assert metrics.messages_total == 2
        assert metrics.messages_of_kind("query") == 1
        assert metrics.rows_of_kind("query") == 2
        assert metrics.by_channel["src->dst"].count == 2

    def test_channel_without_metrics(self):
        sim = Simulator()
        box = Mailbox(sim, "dst")
        ch = Channel(sim, "c", box, ConstantLatency(1.0), metrics=None)
        ch.send(Message(kind="x", sender="s", payload=1))
        sim.run()
        assert ch.sent_count == 1


class TestMailboxExtras:
    def test_peek_all_nondestructive(self):
        sim = Simulator()
        box = Mailbox(sim, "b")
        box.put(1)
        box.put(2)
        assert box.peek_all() == (1, 2)
        assert len(box) == 2

    def test_remove(self):
        sim = Simulator()
        box = Mailbox(sim, "b")
        box.put("a")
        box.put("b")
        assert box.remove("a") is True
        assert box.remove("zzz") is False
        assert box.peek_all() == ("b",)

    def test_second_waiter_rejected(self):
        sim = Simulator()
        box = Mailbox(sim, "b")

        def waiter():
            yield box.get()

        sim.spawn("w1", waiter())
        sim.spawn("w2", waiter())
        with pytest.raises(MailboxOwnershipError):
            sim.run()

    def test_repr(self):
        sim = Simulator()
        box = Mailbox(sim, "b")
        box.put(1)
        assert "1 queued" in repr(box)


class TestMetricsCollector:
    def test_counters_and_observations(self):
        m = MetricsCollector()
        m.increment("updates_installed")
        m.increment("updates_installed", 2)
        m.observe("staleness", 1.0)
        m.observe("staleness", 3.0)
        assert m.counters["updates_installed"] == 3
        assert m.mean_observation("staleness") == 2.0
        assert m.max_observation("staleness") == 3.0
        assert m.mean_observation("missing") is None

    def test_summary_shape(self):
        m = MetricsCollector()
        m.record_message("ch", "query", 4)
        s = m.summary()
        assert s["by_kind"]["query"] == {"count": 1, "rows": 4}
        assert s["counters"]["messages_total"] == 1

    def test_estimate_size(self):
        from repro.relational.delta import Delta
        from repro.relational.schema import Schema

        d = Delta(Schema(("A",)))
        d.add((1,), 1)
        d.add((2,), -1)
        assert estimate_size(d) == 2
        assert estimate_size(None) == 1
        assert estimate_size([d, d]) == 4
        assert estimate_size({"a": d}) == 2
        assert estimate_size(object()) == 1


class TestRng:
    def test_streams_deterministic(self):
        a = RngRegistry(1).stream("x").random()
        b = RngRegistry(1).stream("x").random()
        assert a == b

    def test_streams_independent(self):
        reg = RngRegistry(1)
        assert reg.stream("x").random() != reg.stream("y").random()

    def test_seed_changes_streams(self):
        assert (
            RngRegistry(1).stream("x").random()
            != RngRegistry(2).stream("x").random()
        )

    def test_stream_cached(self):
        reg = RngRegistry(1)
        assert reg.stream("x") is reg.stream("x")
        assert reg.names() == ["x"]

    def test_fork(self):
        reg = RngRegistry(1)
        forked = reg.fork("child")
        assert forked.seed == derive_seed(1, "fork:child")
        assert forked.stream("x").random() != reg.stream("x").random()


class TestTraceLog:
    def test_record_and_filter(self):
        log = TraceLog()
        log.record(1.0, "wh", "install", "dv=3")
        log.record(2.0, "s1", "update", "+(1,2)")
        assert len(log) == 2
        assert len(log.filter(kind="install")) == 1
        assert len(log.filter(actor="s1")) == 1
        assert len(log.filter(kind="install", actor="s1")) == 0

    def test_disabled_log_is_free(self):
        log = TraceLog(enabled=False)
        log.record(1.0, "a", "b", "c")
        assert len(log) == 0

    def test_format_limit(self):
        log = TraceLog()
        for i in range(5):
            log.record(float(i), "a", "k", i)
        text = log.format(limit=2)
        assert "3 more records" in text
        assert "[t=" in text
