"""Unit tests for the simulator core: clock, events, processes."""

import pytest

from repro.simulation.errors import (
    DeadProcessError,
    SimulationError,
    StalledSimulationError,
)
from repro.simulation.events import EventQueue
from repro.simulation.kernel import Simulator
from repro.simulation.mailbox import Mailbox
from repro.simulation.process import Delay


class TestEventQueue:
    def test_ordering_by_time(self):
        q = EventQueue()
        fired = []
        q.push(2.0, lambda: fired.append("b"))
        q.push(1.0, lambda: fired.append("a"))
        while (e := q.pop()) is not None:
            e.callback()
        assert fired == ["a", "b"]

    def test_fifo_at_equal_time(self):
        q = EventQueue()
        fired = []
        for i in range(5):
            q.push(1.0, lambda i=i: fired.append(i))
        while (e := q.pop()) is not None:
            e.callback()
        assert fired == [0, 1, 2, 3, 4]

    def test_cancellation(self):
        q = EventQueue()
        e = q.push(1.0, lambda: None)
        e.cancel()
        assert q.pop() is None
        assert len(q) == 0
        assert not q

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        e = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        e.cancel()
        assert q.peek_time() == 2.0


class TestSchedule:
    def test_clock_advances(self):
        sim = Simulator()
        times = []
        sim.schedule(5.0, lambda: times.append(sim.now))
        sim.schedule(1.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [1.0, 5.0]
        assert sim.now == 5.0

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: sim.schedule_at(0.5, lambda: None))
        with pytest.raises(ValueError):
            sim.run()

    def test_nested_scheduling(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: sim.schedule(1.0, lambda: fired.append(sim.now)))
        sim.run()
        assert fired == [2.0]

    def test_run_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        sim.run()
        assert fired == [1, 10]

    def test_run_for(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, lambda: fired.append(sim.now))
        sim.run_for(2.0)
        assert fired == []
        sim.run_for(2.0)
        assert fired == [3.0]

    def test_max_events_guard(self):
        sim = Simulator()

        def rearm():
            sim.schedule(1.0, rearm)

        sim.schedule(1.0, rearm)
        with pytest.raises(StalledSimulationError):
            sim.run(max_events=100)

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_events_executed_counter(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.events_executed == 2


class TestProcesses:
    def test_delay_effect(self):
        sim = Simulator()
        trace = []

        def body():
            trace.append(sim.now)
            yield Delay(3.0)
            trace.append(sim.now)

        sim.spawn("p", body())
        sim.run()
        assert trace == [0.0, 3.0]

    def test_mailbox_get_blocks_until_put(self):
        sim = Simulator()
        box = Mailbox(sim, "box")
        got = []

        def consumer():
            msg = yield box.get()
            got.append((sim.now, msg))

        sim.spawn("c", consumer())
        sim.schedule(4.0, lambda: box.put("hello"))
        sim.run()
        assert got == [(4.0, "hello")]

    def test_buffered_message_consumed_immediately(self):
        sim = Simulator()
        box = Mailbox(sim, "box")
        box.put("early")
        got = []

        def consumer():
            got.append((yield box.get()))

        sim.spawn("c", consumer())
        sim.run()
        assert got == ["early"]

    def test_messages_fifo(self):
        sim = Simulator()
        box = Mailbox(sim, "box")
        got = []

        def consumer():
            for _ in range(3):
                got.append((yield box.get()))

        sim.spawn("c", consumer())
        for i in range(3):
            box.put(i)
        sim.run()
        assert got == [0, 1, 2]

    def test_yield_from_subprotocol(self):
        sim = Simulator()
        box = Mailbox(sim, "box")
        out = []

        def helper():
            msg = yield box.get()
            return msg * 2

        def main():
            value = yield from helper()
            out.append(value)

        sim.spawn("m", main())
        box.put(21)
        sim.run()
        assert out == [42]

    def test_process_exception_propagates(self):
        sim = Simulator()

        def bad():
            yield Delay(1.0)
            raise RuntimeError("boom")

        p = sim.spawn("bad", bad())
        with pytest.raises(RuntimeError):
            sim.run()
        assert p.finished
        assert isinstance(p.failed, RuntimeError)

    def test_unsupported_effect(self):
        sim = Simulator()

        def weird():
            yield "not-an-effect"

        sim.spawn("w", weird())
        with pytest.raises(SimulationError):
            sim.run()

    def test_resume_dead_process_rejected(self):
        sim = Simulator()

        def quick():
            return
            yield  # pragma: no cover

        p = sim.spawn("q", quick())
        sim.run()
        assert p.finished
        with pytest.raises(DeadProcessError):
            p.resume(None)

    def test_blocked_processes_listed(self):
        sim = Simulator()
        box = Mailbox(sim, "box")

        def waiter():
            yield box.get()

        p = sim.spawn("w", waiter())
        sim.run()
        assert p.is_blocked
        assert sim.blocked_processes() == [p]
        assert "blocked" in repr(p)

    def test_two_processes_interleave_deterministically(self):
        sim = Simulator()
        order = []

        def worker(name, delay):
            for _ in range(3):
                yield Delay(delay)
                order.append((name, sim.now))

        sim.spawn("a", worker("a", 2.0))
        sim.spawn("b", worker("b", 3.0))
        sim.run()
        assert order == [
            # at t=6.0 both are due; "b" scheduled its wakeup first (at t=3)
            ("a", 2.0), ("b", 3.0), ("a", 4.0), ("b", 6.0), ("a", 6.0), ("b", 9.0),
        ]

    def test_negative_delay_effect_rejected(self):
        with pytest.raises(ValueError):
            Delay(-1.0)
