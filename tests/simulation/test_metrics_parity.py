"""Simulator/runtime parity for batched message accounting.

The batched sweep scheduler sends one :class:`MultiQueryRequest` per
source per batch.  For the message-complexity claims to be comparable
across hosts, the simulator's :class:`~repro.simulation.channel.Channel`
and the runtime's channels must account such a frame identically: **one**
message whose row size is the *sum* of the partial deltas it carries --
not one message per partial.
"""

import asyncio

from repro.relational.delta import Delta
from repro.relational.incremental import PartialView
from repro.runtime import AsyncRuntime, LocalChannel
from repro.simulation.channel import Channel, Message
from repro.simulation.kernel import Simulator
from repro.simulation.latency import ConstantLatency
from repro.simulation.mailbox import Mailbox
from repro.simulation.metrics import MetricsCollector
from repro.sources.messages import MultiQueryAnswer, MultiQueryRequest


def _partials(paper_view):
    return [
        PartialView(
            paper_view, 1, 1,
            Delta(paper_view.schema_of(1), {(1, 3): 1, (4, 9): -1}),
        ),
        PartialView(
            paper_view, 1, 2,
            Delta(paper_view.wide_schema_range(1, 2), {(1, 3, 3, 7): 1}),
        ),
    ]


def _expected_rows(partials):
    return sum(p.delta.distinct_count for p in partials)


def test_multi_query_payload_rows_sum_partials(paper_view):
    partials = _partials(paper_view)
    request = Message(
        kind="query", sender="wh",
        payload=MultiQueryRequest(request_id=1, partials=partials, target_index=3),
    )
    answer = Message(
        kind="answer", sender="R3",
        payload=MultiQueryAnswer(request_id=1, partials=partials),
    )
    assert request.payload_rows() == _expected_rows(partials) == 3
    assert answer.payload_rows() == _expected_rows(partials)


def _simulator_metrics(paper_view):
    sim = Simulator()
    metrics = MetricsCollector()
    channel = Channel(
        sim, "wh->R3", Mailbox(sim, "R3"), ConstantLatency(1.0), metrics
    )
    channel.send(
        Message(
            kind="query", sender="wh",
            payload=MultiQueryRequest(
                request_id=1, partials=_partials(paper_view), target_index=3
            ),
        )
    )
    sim.run()
    return metrics


def _runtime_metrics(paper_view):
    async def main():
        runtime = AsyncRuntime(time_scale=0.001)
        metrics = MetricsCollector()
        sink = []

        class Sink:
            def put(self, message):
                sink.append(message)

        channel = LocalChannel(runtime, "wh->R3", Sink(), metrics)
        channel.send(
            Message(
                kind="query", sender="wh",
                payload=MultiQueryRequest(
                    request_id=1, partials=_partials(paper_view), target_index=3
                ),
            )
        )
        await channel.flush()
        await runtime.aclose()
        return metrics

    return asyncio.run(main())


def test_simulator_and_runtime_account_batched_frames_identically(paper_view):
    """One MultiQueryRequest == one message, rows summed -- on both hosts."""
    sim_metrics = _simulator_metrics(paper_view)
    run_metrics = _runtime_metrics(paper_view)

    for metrics in (sim_metrics, run_metrics):
        assert metrics.messages_total == 1
        assert metrics.messages_of_kind("query") == 1
        assert metrics.rows_of_kind("query") == 3

    assert sim_metrics.summary()["by_kind"] == run_metrics.summary()["by_kind"]
    assert (
        sim_metrics.summary()["by_channel"]
        == run_metrics.summary()["by_channel"]
    )
