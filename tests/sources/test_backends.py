"""Backend parity tests: MemoryBackend and SqliteBackend must agree."""

import pytest

from repro.relational.delta import Delta, delta_from_rows
from repro.relational.errors import NegativeCountError, SchemaError
from repro.relational.incremental import PartialView
from repro.relational.relation import Relation
from repro.sources.memory import MemoryBackend
from repro.sources.sqlite import SqliteBackend

from tests.conftest import R1_SCHEMA, R2_SCHEMA


@pytest.fixture(params=["memory", "sqlite"])
def make_backend(request):
    made = []

    def factory(view, index, initial=None):
        if request.param == "memory":
            backend = MemoryBackend(view, index, initial)
        else:
            backend = SqliteBackend(view, index, initial)
        made.append(backend)
        return backend

    yield factory
    for backend in made:
        backend.close()


class TestBackendBasics:
    def test_empty_snapshot(self, make_backend, paper_view):
        backend = make_backend(paper_view, 1)
        assert backend.snapshot() == Relation(R1_SCHEMA)

    def test_initial_contents(self, make_backend, paper_view, paper_states):
        backend = make_backend(paper_view, 1, paper_states["R1"])
        assert backend.snapshot() == paper_states["R1"]

    def test_initial_schema_checked(self, make_backend, paper_view, paper_states):
        with pytest.raises(SchemaError):
            make_backend(paper_view, 1, paper_states["R2"])

    def test_apply_insert_delete(self, make_backend, paper_view, paper_states):
        backend = make_backend(paper_view, 1, paper_states["R1"])
        backend.apply(delta_from_rows(R1_SCHEMA, inserts=[(9, 9)], deletes=[(1, 3)]))
        snap = backend.snapshot()
        assert snap.count((9, 9)) == 1
        assert (1, 3) not in snap

    def test_apply_multiplicity(self, make_backend, paper_view):
        backend = make_backend(paper_view, 1)
        backend.apply(Delta.insert(R1_SCHEMA, (1, 1), 3))
        assert backend.snapshot().count((1, 1)) == 3
        backend.apply(Delta.delete(R1_SCHEMA, (1, 1), 2))
        assert backend.snapshot().count((1, 1)) == 1

    def test_delete_missing_raises_and_rolls_back(self, make_backend, paper_view):
        backend = make_backend(paper_view, 1, Relation(R1_SCHEMA, [(1, 3)]))
        bad = delta_from_rows(R1_SCHEMA, inserts=[(5, 5)], deletes=[(9, 9)])
        with pytest.raises(NegativeCountError):
            backend.apply(bad)
        # atomic: the insert must not have leaked through
        assert backend.snapshot() == Relation(R1_SCHEMA, [(1, 3)])

    def test_snapshot_cannot_alias_mutate_backend(
        self, make_backend, paper_view, paper_states
    ):
        # Snapshots are either independent copies (sqlite) or frozen
        # copy-on-write views (memory); in both cases no mutation of the
        # returned object may reach backend state.
        backend = make_backend(paper_view, 1, paper_states["R1"])
        snap = backend.snapshot()
        try:
            snap.insert((9, 9))
        except TypeError:
            pass  # frozen snapshots refuse mutation outright
        assert (9, 9) not in backend.snapshot()
        # The escape hatch for holders that need a mutable bag.
        mutable = snap.copy()
        mutable.insert((9, 9))
        assert (9, 9) not in backend.snapshot()

    def test_snapshot_is_point_in_time(
        self, make_backend, paper_view, paper_states
    ):
        # Copy-on-write: applying an update after taking a snapshot must
        # not change what the snapshot holder sees.
        backend = make_backend(paper_view, 1, paper_states["R1"])
        before = backend.snapshot()
        seen = before.as_dict()
        backend.apply(Delta.insert(R1_SCHEMA, (4, 3)))
        assert before.as_dict() == seen
        assert (4, 3) in backend.snapshot()


class TestComputeJoin:
    def test_paper_sweep_step(self, make_backend, paper_view, paper_states):
        backend = make_backend(paper_view, 1, paper_states["R1"])
        partial = PartialView.initial(paper_view, 2, Delta.insert(R2_SCHEMA, (3, 5)))
        result = backend.compute_join(partial)
        assert (result.lo, result.hi) == (1, 2)
        assert result.delta.count((1, 3, 3, 5)) == 1
        assert result.delta.count((2, 3, 3, 5)) == 1

    def test_signed_partial(self, make_backend, paper_view, paper_states):
        backend = make_backend(paper_view, 1, paper_states["R1"])
        partial = PartialView.initial(paper_view, 2, Delta.delete(R2_SCHEMA, (3, 7)))
        result = backend.compute_join(partial)
        assert result.delta.count((1, 3, 3, 7)) == -1

    def test_counts_multiply(self, make_backend, paper_view):
        backend = make_backend(paper_view, 1, Relation(R1_SCHEMA, {(1, 3): 2}))
        partial = PartialView.initial(
            paper_view, 2, Delta(R2_SCHEMA, {(3, 5): 3})
        )
        result = backend.compute_join(partial)
        assert result.delta.count((1, 3, 3, 5)) == 6

    def test_non_adjacent_rejected(self, make_backend, paper_view, paper_states):
        backend = make_backend(paper_view, 3, paper_states["R3"])
        partial = PartialView.initial(paper_view, 1, Delta.insert(R1_SCHEMA, (1, 3)))
        with pytest.raises(SchemaError):
            backend.compute_join(partial)

    def test_empty_partial(self, make_backend, paper_view, paper_states):
        backend = make_backend(paper_view, 1, paper_states["R1"])
        partial = PartialView.initial(paper_view, 2, Delta(R2_SCHEMA))
        result = backend.compute_join(partial)
        assert len(result.delta) == 0

    def test_memory_and_sqlite_agree(self, paper_view, paper_states):
        mem = MemoryBackend(paper_view, 1, paper_states["R1"])
        sql = SqliteBackend(paper_view, 1, paper_states["R1"])
        partial = PartialView.initial(paper_view, 2, Delta.insert(R2_SCHEMA, (3, 5)))
        assert mem.compute_join(partial).delta == sql.compute_join(partial).delta
        sql.close()


class TestSqliteSpecifics:
    def test_repr(self, paper_view):
        backend = SqliteBackend(paper_view, 1)
        assert "R1" in repr(backend)
        backend.close()

    def test_file_backed(self, tmp_path, paper_view, paper_states):
        path = str(tmp_path / "source.db")
        backend = SqliteBackend(paper_view, 1, paper_states["R1"], database=path)
        assert backend.snapshot() == paper_states["R1"]
        backend.close()
