"""Unit tests for protocol payloads and their wire-size accounting."""

from repro.relational.delta import Delta
from repro.relational.incremental import PartialView
from repro.relational.relation import Relation
from repro.sources.messages import (
    EcaAnswer,
    EcaQuery,
    EcaQueryTerm,
    MultiQueryAnswer,
    MultiQueryRequest,
    QueryAnswer,
    QueryRequest,
    SnapshotAnswer,
    SnapshotRequest,
    UpdateNotice,
    next_request_id,
)

from tests.conftest import R1_SCHEMA, R2_SCHEMA


def partial(paper_view, rows=1):
    delta = Delta(R2_SCHEMA)
    for i in range(rows):
        delta.add((3, 100 + i), 1)
    return PartialView.initial(paper_view, 2, delta)


class TestRequestIds:
    def test_monotone_unique(self):
        a, b = next_request_id(), next_request_id()
        assert b > a


class TestPayloadSizes:
    def test_update_notice(self):
        delta = Delta(R1_SCHEMA, {(1, 2): 1, (3, 4): -1})
        notice = UpdateNotice(1, 1, delta)
        assert notice.payload_size() == 2
        assert "src=1" in repr(notice)

    def test_empty_delta_counts_one(self):
        notice = UpdateNotice(1, 1, Delta(R1_SCHEMA))
        assert notice.payload_size() == 1

    def test_query_and_answer(self, paper_view):
        p = partial(paper_view, rows=3)
        req = QueryRequest(next_request_id(), p, 1)
        ans = QueryAnswer(req.request_id, p)
        assert req.payload_size() == 3
        assert ans.payload_size() == 3

    def test_multi_query(self, paper_view):
        p1, p2 = partial(paper_view, 2), partial(paper_view, 3)
        req = MultiQueryRequest(next_request_id(), [p1, p2], 1)
        ans = MultiQueryAnswer(req.request_id, [p1, p2])
        assert req.payload_size() == 5
        assert ans.payload_size() == 5

    def test_snapshot(self):
        req = SnapshotRequest(next_request_id())
        assert req.payload_size() == 1
        rel = Relation(R1_SCHEMA, [(1, 2), (3, 4)])
        ans = SnapshotAnswer(req.request_id, 1, rel)
        assert ans.payload_size() == 2

    def test_eca_query_terms(self):
        t1 = EcaQueryTerm({1: Delta(R1_SCHEMA, {(1, 2): 1})})
        t2 = EcaQueryTerm(
            {1: Delta(R1_SCHEMA, {(1, 2): 1}),
             2: Delta(R2_SCHEMA, {(3, 5): 1})},
            sign=-1,
        )
        query = EcaQuery(next_request_id(), [t1, t2])
        assert t1.payload_size() == 1
        assert t2.payload_size() == 2
        assert query.payload_size() == 3

    def test_eca_answer(self, paper_view):
        wide = Delta(paper_view.wide_schema)
        ans = EcaAnswer(next_request_id(), wide)
        assert ans.payload_size() == 1


class TestTransactionTagging:
    def test_default_untagged(self):
        notice = UpdateNotice(1, 1, Delta(R1_SCHEMA))
        assert notice.txn_id is None
        assert notice.txn_total == 0

    def test_tagged(self):
        notice = UpdateNotice(
            1, 1, Delta(R1_SCHEMA), txn_id="t9", txn_total=3
        )
        assert notice.txn_id == "t9"
        assert notice.txn_total == 3
