"""Tests for DataSourceServer, CentralSource, updaters and transactions."""

import pytest

from repro.relational.delta import Delta
from repro.relational.incremental import PartialView
from repro.simulation.channel import Channel, Message
from repro.simulation.kernel import Simulator
from repro.simulation.latency import ConstantLatency
from repro.simulation.mailbox import Mailbox
from repro.simulation.metrics import MetricsCollector
from repro.simulation.trace import TraceLog
from repro.sources.central import CentralSource, evaluate_eca_term
from repro.sources.memory import MemoryBackend
from repro.sources.messages import (
    EcaQuery,
    EcaQueryTerm,
    QueryRequest,
    next_request_id,
)
from repro.sources.server import DataSourceServer
from repro.sources.transactions import Transaction, TransactionOp
from repro.sources.updater import ScheduledUpdate, ScheduledUpdater

from tests.conftest import R1_SCHEMA, R2_SCHEMA


def wire_source(paper_view, paper_states, index=1, latency=1.0, service_time=0.0):
    sim = Simulator()
    wh_inbox = Mailbox(sim, "wh-inbox")
    metrics = MetricsCollector()
    name = paper_view.name_of(index)
    channel = Channel(sim, f"{name}->wh", wh_inbox, ConstantLatency(latency), metrics)
    backend = MemoryBackend(paper_view, index, paper_states[name])
    server = DataSourceServer(
        sim, name, index, backend, channel, query_service_time=service_time,
        trace=TraceLog(),
    )
    return sim, wh_inbox, server, metrics


class TestDataSourceServer:
    def test_local_update_applies_and_forwards(self, paper_view, paper_states):
        sim, inbox, server, _ = wire_source(paper_view, paper_states)
        received = []

        def warehouse():
            msg = yield inbox.get()
            received.append(msg)

        sim.spawn("wh", warehouse())
        server.local_update(Delta.insert(R1_SCHEMA, (9, 9)))
        sim.run()

        assert server.snapshot().count((9, 9)) == 1
        (msg,) = received
        assert msg.kind == "update"
        notice = msg.payload
        assert notice.source_index == 1
        assert notice.seq == 1
        assert notice.delta.count((9, 9)) == 1

    def test_sequence_numbers_increment(self, paper_view, paper_states):
        sim, _, server, _ = wire_source(paper_view, paper_states)
        n1 = server.local_update(Delta.insert(R1_SCHEMA, (8, 8)))
        n2 = server.local_update(Delta.insert(R1_SCHEMA, (9, 9)))
        assert (n1.seq, n2.seq) == (1, 2)
        assert len(server.updates_applied) == 2

    def test_update_listener_fires(self, paper_view, paper_states):
        sim, _, server, _ = wire_source(paper_view, paper_states)
        seen = []
        server.add_update_listener(seen.append)
        server.local_update(Delta.insert(R1_SCHEMA, (9, 9)))
        assert len(seen) == 1

    def test_notice_takes_ownership_of_delta(self, paper_view, paper_states):
        # local_update is zero-copy on the hot path: the committed delta is
        # referenced by the notice, not duplicated.  Ownership transfers to
        # the server; committing code must not touch the delta afterwards.
        sim, _, server, _ = wire_source(paper_view, paper_states)
        delta = Delta.insert(R1_SCHEMA, (9, 9))
        notice = server.local_update(delta)
        assert notice.delta is delta

    def test_backend_state_is_not_aliased_by_commit(
        self, paper_view, paper_states
    ):
        # The backend folds the delta's counts into its own storage; even a
        # caller violating ownership transfer cannot reach backend rows.
        sim, _, server, _ = wire_source(paper_view, paper_states)
        delta = Delta.insert(R1_SCHEMA, (9, 9))
        server.local_update(delta)
        delta.add((8, 8), 3)
        snap = server.snapshot()
        assert snap.count((9, 9)) == 1
        assert (8, 8) not in snap

    def test_query_answered(self, paper_view, paper_states):
        sim, inbox, server, _ = wire_source(paper_view, paper_states)
        answers = []

        def warehouse():
            msg = yield inbox.get()
            answers.append(msg)

        sim.spawn("wh", warehouse())
        partial = PartialView.initial(paper_view, 2, Delta.insert(R2_SCHEMA, (3, 5)))
        server.query_inbox.put(
            Message(
                kind="query",
                sender="wh",
                payload=QueryRequest(next_request_id(), partial, 1),
            )
        )
        sim.run()
        (msg,) = answers
        assert msg.kind == "answer"
        assert msg.payload.partial.delta.total_count == 2

    def test_update_before_answer_arrives_first(self, paper_view, paper_states):
        """The FIFO linchpin: an update applied during query service must be
        delivered to the warehouse before the answer."""
        sim, inbox, server, _ = wire_source(
            paper_view, paper_states, service_time=5.0
        )
        order = []

        def warehouse():
            while True:
                msg = yield inbox.get()
                order.append(msg.kind)

        sim.spawn("wh", warehouse())
        partial = PartialView.initial(paper_view, 2, Delta.insert(R2_SCHEMA, (3, 5)))
        server.query_inbox.put(
            Message(
                kind="query", sender="wh",
                payload=QueryRequest(next_request_id(), partial, 1),
            )
        )
        # update commits at t=2, mid-service (service ends t=5)
        sim.schedule(2.0, lambda: server.local_update(Delta.delete(R1_SCHEMA, (2, 3))))
        sim.run()
        assert order == ["update", "answer"]

    def test_answer_includes_concurrent_update_effect(self, paper_view, paper_states):
        """With service time, the join reflects updates applied mid-service."""
        sim, inbox, server, _ = wire_source(
            paper_view, paper_states, service_time=5.0
        )
        answers = []

        def warehouse():
            while True:
                msg = yield inbox.get()
                if msg.kind == "answer":
                    answers.append(msg.payload)

        sim.spawn("wh", warehouse())
        partial = PartialView.initial(paper_view, 2, Delta.insert(R2_SCHEMA, (3, 5)))
        server.query_inbox.put(
            Message(
                kind="query", sender="wh",
                payload=QueryRequest(next_request_id(), partial, 1),
            )
        )
        sim.schedule(2.0, lambda: server.local_update(Delta.delete(R1_SCHEMA, (2, 3))))
        sim.run()
        (answer,) = answers
        # (2,3) was deleted before evaluation: only one derivation remains
        assert answer.partial.delta.count((1, 3, 3, 5)) == 1
        assert answer.partial.delta.count((2, 3, 3, 5)) == 0

    def test_queries_serviced_sequentially(self, paper_view, paper_states):
        sim, inbox, server, _ = wire_source(
            paper_view, paper_states, service_time=3.0
        )
        times = []

        def warehouse():
            while True:
                msg = yield inbox.get()
                times.append(msg.sent_at)

        sim.spawn("wh", warehouse())
        partial = PartialView.initial(paper_view, 2, Delta.insert(R2_SCHEMA, (3, 5)))
        for _ in range(2):
            server.query_inbox.put(
                Message(
                    kind="query", sender="wh",
                    payload=QueryRequest(next_request_id(), partial, 1),
                )
            )
        sim.run()
        assert times == [3.0, 6.0]


class TestCentralSource:
    def wire(self, paper_view, paper_states):
        sim = Simulator()
        inbox = Mailbox(sim, "wh-inbox")
        channel = Channel(sim, "central->wh", inbox, ConstantLatency(1.0))
        central = CentralSource(sim, paper_view, channel, initial=paper_states)
        return sim, inbox, central

    def test_update_and_snapshot(self, paper_view, paper_states):
        sim, _, central = self.wire(paper_view, paper_states)
        central.local_update(2, Delta.insert(R2_SCHEMA, (3, 5)))
        assert central.snapshot(2).count((3, 5)) == 1
        assert central.snapshot_all()["R1"] == paper_states["R1"]

    def test_per_relation_sequences(self, paper_view, paper_states):
        sim, _, central = self.wire(paper_view, paper_states)
        a = central.local_update(2, Delta.insert(R2_SCHEMA, (3, 5)))
        b = central.local_update(2, Delta.delete(R2_SCHEMA, (3, 5)))
        c = central.local_update(1, Delta.delete(R1_SCHEMA, (2, 3)))
        assert (a.seq, b.seq, c.seq) == (1, 2, 1)

    def test_evaluate_eca_term_full_view(self, paper_view, paper_states):
        term = EcaQueryTerm(substitutions={})
        wide = evaluate_eca_term(paper_view, paper_states, term)
        assert wide.total_count == 2  # the two derivations of (7,8)

    def test_evaluate_eca_term_with_substitution(self, paper_view, paper_states):
        term = EcaQueryTerm(
            substitutions={2: Delta.insert(R2_SCHEMA, (3, 5))}
        )
        wide = evaluate_eca_term(paper_view, paper_states, term)
        assert wide.count((1, 3, 3, 5, 5, 6)) == 1
        assert wide.count((2, 3, 3, 5, 5, 6)) == 1

    def test_evaluate_eca_term_negative_sign(self, paper_view, paper_states):
        term = EcaQueryTerm(
            substitutions={2: Delta.insert(R2_SCHEMA, (3, 5))}, sign=-1
        )
        wide = evaluate_eca_term(paper_view, paper_states, term)
        assert wide.count((1, 3, 3, 5, 5, 6)) == -1

    def test_evaluate_eca_term_bad_sign(self, paper_view, paper_states):
        with pytest.raises(ValueError):
            evaluate_eca_term(paper_view, paper_states, EcaQueryTerm({}, sign=2))

    def test_query_evaluation(self, paper_view, paper_states):
        sim, inbox, central = self.wire(paper_view, paper_states)
        answers = []

        def warehouse():
            while True:
                msg = yield inbox.get()
                if msg.kind == "answer":
                    answers.append(msg.payload)

        sim.spawn("wh", warehouse())
        query = EcaQuery(
            request_id=next_request_id(),
            terms=[
                EcaQueryTerm({2: Delta.insert(R2_SCHEMA, (3, 5))}, sign=1),
                EcaQueryTerm({2: Delta.insert(R2_SCHEMA, (3, 5))}, sign=-1),
            ],
        )
        central.query_inbox.put(Message(kind="query", sender="wh", payload=query))
        sim.run()
        (answer,) = answers
        assert len(answer.delta) == 0  # the terms cancel


class TestScheduledUpdater:
    def test_schedule_replayed_in_time_order(self, paper_view, paper_states):
        sim, _, server, _ = wire_source(paper_view, paper_states)
        updater = ScheduledUpdater(
            sim,
            "R1",
            server.local_update,
            [
                ScheduledUpdate(5.0, Delta.insert(R1_SCHEMA, (9, 9))),
                ScheduledUpdate(2.0, Delta.insert(R1_SCHEMA, (8, 8))),
            ],
        )
        sim.run()
        assert updater.done
        applied = [(n.applied_at, n.delta) for n in server.updates_applied]
        assert applied[0][0] == 2.0
        assert applied[1][0] == 5.0

    def test_empty_schedule(self, paper_view, paper_states):
        sim, _, server, _ = wire_source(paper_view, paper_states)
        updater = ScheduledUpdater(sim, "R1", server.local_update, [])
        sim.run()
        assert updater.done


class TestTransactions:
    def test_ops_validate_kind(self):
        with pytest.raises(ValueError):
            TransactionOp("upsert", (1, 2))

    def test_as_delta_nets_out(self):
        txn = Transaction().insert((1, 2)).insert((3, 4)).delete((1, 2))
        delta = txn.as_delta(R1_SCHEMA)
        assert delta.count((3, 4)) == 1
        assert (1, 2) not in delta

    def test_modify(self):
        txn = Transaction().modify((1, 2), (1, 3))
        delta = txn.as_delta(R1_SCHEMA)
        assert delta.count((1, 2)) == -1
        assert delta.count((1, 3)) == 1
        assert len(txn) == 2

    def test_transaction_applied_atomically(self, paper_view, paper_states):
        sim, inbox, server, _ = wire_source(paper_view, paper_states)
        txn = Transaction().delete((1, 3)).insert((1, 4))
        notice = server.local_update(txn.as_delta(R1_SCHEMA))
        assert notice.delta.distinct_count == 2
        snap = server.snapshot()
        assert (1, 3) not in snap and snap.count((1, 4)) == 1
