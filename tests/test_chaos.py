"""Chaos mode: demonstrating that FIFO channels are load-bearing.

The paper assumes reliable FIFO channels (Section 2) and SWEEP's local
compensation is *proved* through that assumption (Section 4).  These tests
flip the assumption off (`fifo_channels=False`: messages can overtake each
other) and show the consequences empirically: with FIFO, SWEEP is
completely consistent on every seed; without it, some seed produces an
inconsistent run (or the strict view store refuses a corrupted delta).
"""


from repro.consistency.levels import ConsistencyLevel
from repro.harness.config import ExperimentConfig
from repro.harness.runner import run_experiment
from repro.relational.errors import NegativeCountError

HOSTILE = dict(
    n_sources=4, n_updates=25, mean_interarrival=0.8, latency=6.0,
    latency_model="exponential",  # heavy-tailed: overtaking is common
    match_fraction=1.0, insert_fraction=0.5, rows_per_relation=10,
)

SEEDS = range(12)


def run_one(seed, fifo):
    return run_experiment(
        ExperimentConfig(
            algorithm="sweep", seed=seed, fifo_channels=fifo, **HOSTILE
        )
    )


class TestFifoIsLoadBearing:
    def test_with_fifo_every_seed_is_complete(self):
        for seed in SEEDS:
            result = run_one(seed, fifo=True)
            assert result.classified_level == ConsistencyLevel.COMPLETE, seed

    def test_without_fifo_sweep_breaks(self):
        """At least one seed must produce an incorrect run: either the
        strict store catches an impossible delete, or the oracle refuses
        complete consistency."""
        broke = 0
        for seed in SEEDS:
            try:
                result = run_one(seed, fifo=False)
            except NegativeCountError:
                broke += 1
                continue
            if result.classified_level != ConsistencyLevel.COMPLETE:
                broke += 1
        assert broke > 0, (
            "non-FIFO channels never broke SWEEP across"
            f" {len(list(SEEDS))} seeds -- chaos mode is not chaotic enough"
        )

    def test_reorderings_are_counted(self):
        """The chaos channels actually reorder under this latency model."""
        from repro.simulation.channel import Channel, Message
        from repro.simulation.kernel import Simulator
        from repro.simulation.latency import ExponentialLatency
        from repro.simulation.mailbox import Mailbox
        import random

        sim = Simulator()
        box = Mailbox(sim, "dst")
        channel = Channel(
            sim, "ch", box, ExponentialLatency(5.0, random.Random(1)),
            enforce_fifo=False,
        )

        def consumer():
            while True:
                yield box.get()

        sim.spawn("c", consumer())
        for i in range(100):
            sim.schedule_at(
                i * 0.2,
                lambda i=i: channel.send(Message(kind="m", sender="s", payload=i)),
            )
        sim.run()
        assert channel.reorderings > 0

    def test_fifo_channel_never_reorders(self):
        result = run_one(0, fifo=True)
        # the counter exists on every channel and stays zero under FIFO
        assert result.classified_level == ConsistencyLevel.COMPLETE
