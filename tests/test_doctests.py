"""Run the doctests embedded in module/class docstrings.

Docstring examples are part of the public documentation; they must stay
executable.  Modules whose examples need heavy setup are exercised by the
regular suite instead.
"""

import doctest

import pytest

import repro.relational.delta
import repro.relational.relation
import repro.relational.schema
import repro.relational.sqlview
import repro.simulation.rng

MODULES = (
    repro.relational.schema,
    repro.relational.relation,
    repro.relational.delta,
    repro.relational.sqlview,
    repro.simulation.rng,
)


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(
        module, optionflags=doctest.ELLIPSIS, verbose=False
    )
    assert results.failed == 0, f"{results.failed} doctest failures"
    assert results.attempted > 0, "expected at least one doctest"
