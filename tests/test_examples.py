"""Smoke tests: the shipped examples must run cleanly end to end.

Each example is executed as a real subprocess (the way a user would run
it) from a neutral working directory.  Heavy examples (full experiment
sweeps) are exercised through their underlying modules elsewhere and
skipped here to keep the suite fast.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = (
    "quickstart.py",
    "paper_example.py",
    "retail_dashboard.py",
    "aggregate_dashboard.py",
    "multi_view_warehouse.py",
    "sql_defined_view.py",
    "anomaly_demo.py",
)


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, tmp_path):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        cwd=tmp_path,  # neutral cwd: examples must not rely on repo root
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_examples_directory_complete():
    """Every example is either smoke-tested here or known-heavy."""
    heavy = {"algorithm_comparison.py", "model_vs_simulation.py"}
    helpers = {"examples_path_shim.py"}
    present = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert present == set(FAST_EXAMPLES) | heavy | helpers


def test_quickstart_mentions_consistency(tmp_path):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        cwd=tmp_path, capture_output=True, text=True, timeout=180,
    )
    assert "complete" in result.stdout
