"""Smoke tests: the shipped examples must run cleanly end to end.

Each example is executed as a real subprocess (the way a user would run
it) from a neutral working directory.  Heavy examples (full experiment
sweeps) are exercised through their underlying modules elsewhere and
skipped here to keep the suite fast.
"""

import os
import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
SRC_DIR = EXAMPLES_DIR.parent / "src"


def _example_env() -> dict:
    """The caller's environment plus the repo's ``src`` on PYTHONPATH.

    The path is absolute so the subprocess can run from a neutral working
    directory; existing PYTHONPATH entries (e.g. the examples_path_shim
    mechanism when a user sets one up) are preserved after it.
    """
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        f"{SRC_DIR}{os.pathsep}{existing}" if existing else str(SRC_DIR)
    )
    return env


FAST_EXAMPLES = (
    "quickstart.py",
    "paper_example.py",
    "retail_dashboard.py",
    "aggregate_dashboard.py",
    "multi_view_warehouse.py",
    "sql_defined_view.py",
    "anomaly_demo.py",
    "distributed_quickstart.py",
)


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, tmp_path):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        cwd=tmp_path,  # neutral cwd: examples must not rely on repo root
        env=_example_env(),
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_examples_directory_complete():
    """Every example is either smoke-tested here or known-heavy."""
    heavy = {"algorithm_comparison.py", "model_vs_simulation.py"}
    helpers = {"examples_path_shim.py"}
    present = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert present == set(FAST_EXAMPLES) | heavy | helpers


def test_quickstart_mentions_consistency(tmp_path):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        cwd=tmp_path, env=_example_env(),
        capture_output=True, text=True, timeout=180,
    )
    assert "complete" in result.stdout
