"""The README's code snippets must actually run.

Documentation rot is a bug: this test extracts the first python code block
from README.md and executes it.
"""

import pathlib
import re

README = pathlib.Path(__file__).resolve().parent.parent / "README.md"


def extract_python_blocks(text: str) -> list[str]:
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestReadme:
    def test_quickstart_snippet_runs(self, capsys):
        blocks = extract_python_blocks(README.read_text(encoding="utf-8"))
        assert blocks, "README has no python snippet"
        namespace: dict = {}
        exec(compile(blocks[0], "<README quickstart>", "exec"), namespace)
        out = capsys.readouterr().out
        assert "consistency" in out  # result.report() was printed

    def test_readme_mentions_every_registered_algorithm(self):
        from repro.warehouse.registry import ALGORITHMS

        text = README.read_text(encoding="utf-8")
        for name in ALGORITHMS:
            # registry names appear via their module names in the tree
            module = ALGORITHMS[name].cls.__module__.rsplit(".", 1)[1]
            assert module in text or name in text, name

    def test_readme_points_at_real_files(self):
        text = README.read_text(encoding="utf-8")
        root = README.parent
        for rel in re.findall(r"\((docs/[\w.]+\.md)\)", text):
            assert (root / rel).exists(), rel
        for example in re.findall(r"python (examples/[\w.]+\.py)", text):
            assert (root / example).exists(), example
