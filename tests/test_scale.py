"""Scale/integration smoke tests: larger runs stay linear and healthy."""

import time

from repro.harness.config import ExperimentConfig
from repro.harness.runner import run_experiment


class TestScale:
    def test_sweep_8_sources_200_updates(self):
        """A deliberately larger run: message linearity and bounded cost."""
        started = time.perf_counter()
        result = run_experiment(
            ExperimentConfig(
                algorithm="sweep",
                seed=1,
                n_sources=8,
                n_updates=200,
                rows_per_relation=30,
                mean_interarrival=2.0,
                latency=4.0,
                match_fraction=0.9,
                check_consistency=False,
            )
        )
        elapsed = time.perf_counter() - started
        assert result.updates_delivered == 200
        assert result.installs == 200
        assert result.protocol_messages == 200 * 2 * 7  # exactly linear
        assert elapsed < 30  # generous; typically well under 5s

    def test_pipelined_heavy_overlap(self):
        result = run_experiment(
            ExperimentConfig(
                algorithm="pipelined-sweep",
                seed=2,
                n_sources=6,
                n_updates=120,
                rows_per_relation=20,
                mean_interarrival=0.5,
                latency=6.0,
                check_consistency=False,
            )
        )
        assert result.installs == 120
        assert result.metrics.max_observation("pipeline_depth") >= 4

    def test_sqlite_medium_run(self):
        result = run_experiment(
            ExperimentConfig(
                algorithm="sweep",
                seed=3,
                n_sources=4,
                n_updates=60,
                rows_per_relation=50,
                mean_interarrival=2.0,
                backend="sqlite",
                check_consistency=False,
            )
        )
        assert result.installs == 60

    def test_event_counts_scale_linearly_with_updates(self):
        def events(n_updates):
            result = run_experiment(
                ExperimentConfig(
                    algorithm="sweep", seed=4, n_sources=4,
                    n_updates=n_updates, mean_interarrival=2.0,
                    check_consistency=False,
                )
            )
            return result.metrics.messages_total

        small, large = events(25), events(100)
        assert 3.5 <= large / small <= 4.5
