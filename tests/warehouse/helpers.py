"""Shared helpers for warehouse algorithm tests."""

from repro.harness.config import ExperimentConfig
from repro.harness.runner import run_experiment
from repro.workloads.paper_example import (
    paper_example_states,
    paper_example_updates,
    paper_example_view,
)
from repro.workloads.scenarios import Workload


def paper_workload(spacing: float = 1.0) -> Workload:
    """The Figure 5 example as a harness workload.

    With ``spacing=1.0`` and the default latency of 5, all three updates
    race each other's sweeps (the concurrent scenario of Section 5.2);
    with a large spacing they run sequentially.
    """
    return Workload(
        view=paper_example_view(),
        initial_states=paper_example_states(),
        schedules=paper_example_updates(spacing=spacing),
        description=f"paper example (spacing={spacing})",
    )


def run(algorithm: str, workload=None, **overrides) -> "RunResult":
    """Run one experiment with test-friendly defaults."""
    defaults = dict(
        algorithm=algorithm,
        seed=overrides.pop("seed", 0),
        latency=5.0,
        latency_model="constant",
    )
    defaults.update(overrides)
    if workload is not None:
        defaults["workload"] = workload
        defaults.setdefault("n_sources", workload.view.n_relations)
    return run_experiment(ExperimentConfig(**defaults))


def trajectory(result) -> list[dict]:
    """Installed view states as row->count dicts (initial state excluded)."""
    return [snap.view.as_dict() for snap in result.recorder.snapshots]
