"""Adaptive drain-cap tests (:class:`repro.warehouse.batched.AdaptiveBatchCap`).

The controller is pure bookkeeping -- identical observation sequences
must yield identical cap sequences -- so the unit tests feed synthetic
depth/lag streams and assert the multiplicative grow/shrink dynamics;
the integration test runs the batched scheduler with ``adaptive=True``
on a saturated workload and checks the cap actually moved while the
ceiling and the strong-consistency verdict both held.
"""

import pytest

from repro.consistency.levels import ConsistencyLevel
from repro.harness.config import ExperimentConfig
from repro.harness.runner import run_experiment
from repro.warehouse.batched import AdaptiveBatchCap


def test_cap_grows_under_sustained_queue_depth():
    cap = AdaptiveBatchCap(ceiling=64, patience=2)
    seen = [cap.observe(50) for _ in range(12)]
    assert seen[0] == 1  # starts at the floor
    assert seen[-1] == 64  # doubles its way up to the ceiling
    assert seen == sorted(seen)  # growth is monotone under constant pressure


def test_cap_never_exceeds_ceiling():
    cap = AdaptiveBatchCap(ceiling=8)
    for _ in range(50):
        assert cap.observe(10_000, install_lag=10_000.0) <= 8


def test_unbounded_ceiling_keeps_doubling():
    cap = AdaptiveBatchCap(ceiling=0, patience=1)
    for _ in range(10):
        cap.observe(1_000_000)
    assert cap.cap == 2**10


def test_cap_shrinks_back_to_floor_when_queue_drains():
    cap = AdaptiveBatchCap(ceiling=64, patience=2)
    for _ in range(12):
        cap.observe(50)
    assert cap.cap == 64
    for _ in range(40):
        cap.observe(0, install_lag=0.0)
    assert cap.cap == 1


def test_install_lag_alone_triggers_growth():
    cap = AdaptiveBatchCap(ceiling=16, patience=2, lag_threshold=50.0)
    for _ in range(6):
        cap.observe(0, install_lag=500.0)
    assert cap.cap > 1


def test_one_burst_does_not_move_the_cap():
    """Patience + EWMA: a single spike is not sustained pressure."""
    cap = AdaptiveBatchCap(ceiling=64, patience=2)
    cap.observe(50)
    assert cap.cap == 1
    for _ in range(10):
        cap.observe(0)
    assert cap.cap == 1


def test_initial_is_clamped_to_ceiling_and_floor():
    assert AdaptiveBatchCap(ceiling=8, initial=32).cap == 8
    assert AdaptiveBatchCap(floor=4, initial=2).cap == 4
    assert AdaptiveBatchCap(initial=16).cap == 16


@pytest.mark.parametrize(
    "kwargs",
    [
        {"floor": 0},
        {"floor": 4, "ceiling": 2},
        {"alpha": 0.0},
        {"alpha": 1.5},
        {"patience": 0},
    ],
)
def test_constructor_validation(kwargs):
    with pytest.raises(ValueError):
        AdaptiveBatchCap(**kwargs)


def test_identical_observations_yield_identical_caps():
    stream = [30, 30, 5, 0, 80, 80, 80, 0, 0, 0]
    a = AdaptiveBatchCap(ceiling=32)
    b = AdaptiveBatchCap(ceiling=32)
    assert [a.observe(d) for d in stream] == [b.observe(d) for d in stream]


def test_adaptive_batched_sweep_respects_ceiling_and_stays_strong():
    """Saturated run: the cap grows, batches stay bounded, verdict holds."""
    config = ExperimentConfig(
        algorithm="batched-sweep",
        n_sources=3,
        n_updates=40,
        seed=11,
        mean_interarrival=0.01,
        batch_max=4,
        batch_adaptive=True,
        check_consistency=True,
    )
    result = run_experiment(config)
    caps = result.metrics.observations["adaptive_cap"]
    sizes = result.metrics.observations["batch_size"]
    assert caps, "adaptive scheduler must record its cap per drain"
    assert max(caps) <= 4 and min(caps) >= 1
    assert max(caps) > 1  # saturation actually grew the cap
    assert max(sizes) <= 4  # no drain ever exceeded the ceiling
    assert result.consistency[ConsistencyLevel.STRONG].ok
