"""Edge-case tests for the warehouse runtime plumbing (base.py)."""

import pytest

from repro.relational.delta import Delta
from repro.simulation.channel import Channel, Message
from repro.simulation.kernel import Simulator
from repro.simulation.latency import ConstantLatency
from repro.simulation.mailbox import Mailbox
from repro.sources.memory import MemoryBackend
from repro.sources.messages import QueryAnswer, UpdateNotice, next_request_id
from repro.sources.server import DataSourceServer
from repro.warehouse.errors import ProtocolError
from repro.warehouse.sweep import SweepWarehouse

from tests.conftest import R1_SCHEMA, R2_SCHEMA


def wire(paper_view, paper_states):
    """Manual wiring of a 3-source SWEEP warehouse (no harness)."""
    sim = Simulator()
    inbox = Mailbox(sim, "wh-inbox")
    query_channels = {}
    servers = {}
    for index in range(1, 4):
        name = paper_view.name_of(index)
        backend = MemoryBackend(paper_view, index, paper_states[name])
        to_wh = Channel(sim, f"{name}->wh", inbox, ConstantLatency(1.0))
        server = DataSourceServer(sim, name, index, backend, to_wh)
        query_channels[index] = Channel(
            sim, f"wh->{name}", server.query_inbox, ConstantLatency(1.0)
        )
        servers[index] = server
    warehouse = SweepWarehouse(
        sim,
        paper_view,
        query_channels,
        initial_view=paper_view.evaluate(paper_states),
        inbox=inbox,
    )
    return sim, warehouse, servers


class TestManualWiring:
    def test_end_to_end_without_harness(self, paper_view, paper_states):
        sim, warehouse, servers = wire(paper_view, paper_states)
        servers[2].local_update(Delta.insert(R2_SCHEMA, (3, 5)))
        sim.run()
        assert warehouse.current_view().count((5, 6)) == 2
        assert warehouse.store.installs == 1

    def test_applied_counts_track_installs(self, paper_view, paper_states):
        sim, warehouse, servers = wire(paper_view, paper_states)
        servers[2].local_update(Delta.insert(R2_SCHEMA, (3, 5)))
        servers[1].local_update(Delta.delete(R1_SCHEMA, (2, 3)))
        sim.run()
        assert warehouse.applied_counts == {2: 1, 1: 1}

    def test_default_inbox_created_when_not_given(self, paper_view):
        sim = Simulator()
        warehouse = SweepWarehouse(sim, paper_view, query_channels={})
        assert warehouse.inbox.name == "warehouse-inbox"

    def test_unexpected_answer_id_raises(self, paper_view, paper_states):
        sim, warehouse, servers = wire(paper_view, paper_states)
        # an answer nobody asked for, racing a real update's sweep
        stray = QueryAnswer(
            request_id=next_request_id(),
            partial=None,
        )
        servers[2].local_update(Delta.insert(R2_SCHEMA, (3, 5)))
        sim.schedule(1.5, lambda: warehouse.inbox.put(
            Message(kind="answer", sender="evil", payload=stray)
        ))
        with pytest.raises(ProtocolError):
            sim.run()

    def test_note_delivery_without_recorder_stamps_seq(self, paper_view):
        sim = Simulator()
        warehouse = SweepWarehouse(sim, paper_view, query_channels={})
        notice = UpdateNotice(1, 1, Delta(R1_SCHEMA))
        warehouse.note_delivery(notice)
        assert notice.delivery_seq == 1
        assert warehouse.updates_delivered == 1

    def test_install_without_recorder(self, paper_view, paper_states):
        sim = Simulator()
        warehouse = SweepWarehouse(
            sim, paper_view, query_channels={},
            initial_view=paper_view.evaluate(paper_states),
        )
        wide = Delta(paper_view.wide_schema, {(1, 3, 3, 5, 5, 6): 1})
        warehouse.install_wide(wide, note="manual")
        assert warehouse.current_view().count((5, 6)) == 1
        assert warehouse.metrics.counters["installs"] == 1

    def test_repr(self, paper_view):
        sim = Simulator()
        warehouse = SweepWarehouse(sim, paper_view, query_channels={})
        assert "SweepWarehouse" in repr(warehouse)


class TestPendingSnapshotSemantics:
    def test_pending_updates_empty_before_any_answer(self, paper_view):
        sim = Simulator()
        warehouse = SweepWarehouse(sim, paper_view, query_channels={})
        assert warehouse.pending_updates_from(1) == []

    def test_merged_pending_delta(self, paper_view):
        sim = Simulator()
        warehouse = SweepWarehouse(sim, paper_view, query_channels={})
        notices = [
            UpdateNotice(1, 1, Delta.insert(R1_SCHEMA, (9, 9))),
            UpdateNotice(1, 2, Delta.delete(R1_SCHEMA, (9, 9))),
        ]
        merged = warehouse.merged_pending_delta(notices)
        assert len(merged) == 0  # nets out
