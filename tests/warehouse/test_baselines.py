"""Convergent (anomaly) and recompute baselines, view store, registry."""

import pytest

from repro.consistency.levels import ConsistencyLevel
from repro.relational.delta import delta_from_rows
from repro.relational.errors import NegativeCountError
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.warehouse.registry import ALGORITHMS, algorithm_info
from repro.warehouse.view_store import MaterializedView

from tests.warehouse.helpers import paper_workload, run, trajectory
from repro.workloads.paper_example import PAPER_EXPECTED_TRAJECTORY


class TestConvergentBaseline:
    def test_correct_without_concurrency(self):
        result = run("convergent", workload=paper_workload(spacing=1000.0))
        assert trajectory(result) == [dict(d) for d in PAPER_EXPECTED_TRAJECTORY[1:]]
        assert result.classified_level == ConsistencyLevel.COMPLETE

    def test_anomalies_under_concurrency(self):
        """Without compensation the error terms corrupt the view; the run
        must NOT be completely consistent and typically fails convergence."""
        result = run(
            "convergent", seed=3, n_sources=4, n_updates=30,
            mean_interarrival=1.0, latency=8.0, match_fraction=1.0,
            insert_fraction=0.5, rows_per_relation=10,
        )
        assert result.classified_level != ConsistencyLevel.COMPLETE

    def test_same_workload_sweep_is_correct(self):
        """The anomaly is the algorithm's fault, not the workload's."""
        common = dict(seed=3, n_sources=4, n_updates=30,
                      mean_interarrival=1.0, latency=8.0, match_fraction=1.0,
                      insert_fraction=0.5, rows_per_relation=10)
        assert run("sweep", **common).classified_level == ConsistencyLevel.COMPLETE

    def test_anomaly_counter_exposed(self):
        result = run(
            "convergent", seed=6, n_sources=3, n_updates=40,
            mean_interarrival=0.5, latency=10.0, match_fraction=1.0,
            insert_fraction=0.5, rows_per_relation=6,
        )
        assert result.warehouse.anomalies >= 0  # tolerant store in use
        assert result.warehouse.store.strict is False


class TestRecomputeBaseline:
    def test_correct_and_expensive(self):
        result = run("recompute", seed=1, n_sources=3, n_updates=10,
                     mean_interarrival=2.0, rows_per_relation=15)
        assert result.consistency[ConsistencyLevel.CONVERGENCE].ok
        assert result.classified_level >= ConsistencyLevel.STRONG
        # n snapshot queries per update (SWEEP needs only n-1)
        assert result.queries_sent == 10 * 3

    def test_payload_dwarfs_sweep(self):
        common = dict(seed=1, n_sources=3, n_updates=10,
                      mean_interarrival=2.0, rows_per_relation=30)
        recompute = run("recompute", **common)
        sweep = run("sweep", **common)
        answer_rows = recompute.metrics.rows_of_kind("answer")
        sweep_rows = sweep.metrics.rows_of_kind("answer")
        assert answer_rows > 5 * sweep_rows


class TestMaterializedView:
    VIEW_SCHEMA = Schema(("D", "F"))

    def _store(self, paper_view, paper_states, strict=True):
        return MaterializedView.from_states(paper_view, paper_states, strict=strict)

    def test_from_states(self, paper_view, paper_states):
        store = self._store(paper_view, paper_states)
        assert store.count((7, 8)) == 2
        assert len(store) == 1

    def test_strict_raises_on_bad_delta(self, paper_view, paper_states):
        store = self._store(paper_view, paper_states)
        with pytest.raises(NegativeCountError):
            store.apply(delta_from_rows(self.VIEW_SCHEMA, deletes=[(9, 9)]))

    def test_tolerant_counts_anomalies(self, paper_view, paper_states):
        store = self._store(paper_view, paper_states, strict=False)
        store.apply(delta_from_rows(self.VIEW_SCHEMA, deletes=[(9, 9)]))
        assert store.anomalies == 1
        assert store.count((9, 9)) == 0

    def test_tolerant_clamps_not_deletes_valid(self, paper_view, paper_states):
        store = self._store(paper_view, paper_states, strict=False)
        store.apply(delta_from_rows(self.VIEW_SCHEMA, deletes=[(7, 8)]))
        assert store.count((7, 8)) == 1
        assert store.anomalies == 0

    def test_initial_schema_checked(self, paper_view):
        from repro.relational.errors import HeterogeneousSchemaError

        with pytest.raises(HeterogeneousSchemaError):
            MaterializedView(paper_view, Relation(Schema(("X",))))

    def test_install_wide(self, paper_view, paper_states):
        store = self._store(paper_view, paper_states)
        wide = delta_from_rows(
            paper_view.wide_schema, inserts=[(1, 3, 3, 5, 5, 6)]
        )
        store.install_wide(wide)
        assert store.count((5, 6)) == 1
        assert store.installs == 1

    def test_snapshot_is_copy(self, paper_view, paper_states):
        store = self._store(paper_view, paper_states)
        snap = store.snapshot()
        snap.insert((0, 0))
        assert store.count((0, 0)) == 0

    def test_repr(self, paper_view, paper_states):
        assert "strict" in repr(self._store(paper_view, paper_states))
        assert "tolerant" in repr(self._store(paper_view, paper_states, strict=False))


class TestRegistry:
    def test_all_expected_algorithms_present(self):
        assert set(ALGORITHMS) == {
            "eca", "strobe", "c-strobe", "sweep", "nested-sweep",
            "batched-sweep", "pipelined-sweep", "global-sweep",
            "bootstrap-sweep", "convergent", "recompute",
        }

    def test_paper_table_flags(self):
        in_table = {n for n, i in ALGORITHMS.items() if i.in_paper_table}
        assert in_table == {"eca", "strobe", "c-strobe", "sweep", "nested-sweep"}

    def test_lookup_error_lists_names(self):
        with pytest.raises(KeyError) as exc:
            algorithm_info("nope")
        assert "sweep" in str(exc.value)

    def test_table1_static_claims(self):
        assert ALGORITHMS["sweep"].message_cost == "O(n)"
        assert ALGORITHMS["c-strobe"].message_cost == "O(n!)"
        assert ALGORITHMS["sweep"].claimed_consistency.name == "COMPLETE"
        assert ALGORITHMS["eca"].architecture == "centralized"
        assert ALGORITHMS["strobe"].requires_keys
        assert not ALGORITHMS["sweep"].requires_keys
