"""Bootstrap-SWEEP tests: online initial load under racing updates."""

import pytest

from repro.consistency.checker import evaluate_at
from repro.consistency.levels import ConsistencyLevel

from tests.warehouse.helpers import paper_workload, run


class TestBootstrap:
    def test_starts_empty_and_loads(self):
        result = run("bootstrap-sweep", workload=paper_workload(spacing=1000.0))
        assert result.recorder.snapshots.initial.distinct_count == 0
        first = result.recorder.snapshots.snapshots[0]
        assert "bootstrap" in first.note
        assert first.view.distinct_count > 0
        assert result.warehouse.bootstrapped

    def test_first_install_matches_claimed_vector(self):
        result = run(
            "bootstrap-sweep", seed=1, n_sources=4, n_updates=15,
            mean_interarrival=1.0, latency=6.0, match_fraction=1.0,
            insert_fraction=0.5, rows_per_relation=8,
        )
        first = result.recorder.snapshots.snapshots[0]
        expected = evaluate_at(
            result.recorder.view, result.recorder.history, first.claimed_vector
        )
        assert first.view == expected

    @pytest.mark.parametrize("seed", range(5))
    def test_strong_consistency_end_to_end(self, seed):
        result = run(
            "bootstrap-sweep", seed=seed, n_sources=4, n_updates=15,
            mean_interarrival=1.0, latency=6.0, latency_model="uniform",
            match_fraction=1.0, insert_fraction=0.5, rows_per_relation=8,
        )
        assert result.consistency[ConsistencyLevel.CONVERGENCE].ok
        assert result.consistency[ConsistencyLevel.STRONG].ok
        assert result.classified_level >= ConsistencyLevel.STRONG

    def test_absorbed_updates_not_replayed(self):
        """Source-1 updates racing the snapshot are inside it; replaying
        them would double-apply (strict view store would raise)."""
        result = run(
            "bootstrap-sweep", seed=2, n_sources=3, n_updates=20,
            mean_interarrival=0.5, latency=8.0, match_fraction=1.0,
            insert_fraction=0.5, rows_per_relation=8,
        )
        absorbed = result.metrics.counters.get("bootstrap_absorbed", 0)
        assert result.installs == result.updates_delivered - absorbed + 1
        assert result.consistency[ConsistencyLevel.CONVERGENCE].ok

    def test_quiet_bootstrap_equals_offline_initialization(self):
        """With no update traffic, online load = the paper's assumption."""
        boot = run("bootstrap-sweep", seed=5, n_sources=3, n_updates=0)
        offline = run("sweep", seed=5, n_sources=3, n_updates=0)
        assert boot.final_view == offline.final_view

    def test_bootstrap_message_cost(self):
        """One snapshot + (n-1) ComputeJoins: n queries for the load."""
        result = run("bootstrap-sweep", seed=5, n_sources=4, n_updates=0)
        assert result.queries_sent == 4

    def test_sqlite_backend(self):
        result = run(
            "bootstrap-sweep", seed=3, n_sources=3, n_updates=10,
            mean_interarrival=1.0, backend="sqlite",
        )
        assert result.consistency[ConsistencyLevel.CONVERGENCE].ok
