"""Cross-algorithm invariants: all correct algorithms agree on outcomes."""

import pytest

from repro.consistency.levels import ConsistencyLevel
from repro.harness.config import ExperimentConfig
from repro.harness.runner import run_experiment
from repro.harness.experiments.table1 import shared_workload

CORRECT = (
    "sweep", "nested-sweep", "pipelined-sweep", "global-sweep",
    "bootstrap-sweep", "c-strobe", "strobe", "recompute",
)


@pytest.fixture(scope="module")
def shared_runs():
    """Every correct distributed algorithm on one shared hostile history."""
    workload = shared_workload(seed=13, n_sources=4, n_updates=18)
    runs = {}
    for algorithm in CORRECT:
        runs[algorithm] = run_experiment(
            ExperimentConfig(
                algorithm=algorithm,
                seed=13,
                workload=workload,
                n_sources=4,
                latency=7.0,
                latency_model="uniform",
            )
        )
    return runs


class TestSharedHistoryInvariants:
    def test_all_converge_to_identical_final_view(self, shared_runs):
        views = {name: r.final_view for name, r in shared_runs.items()}
        reference = views["sweep"]
        for name, view in views.items():
            assert view == reference, f"{name} disagrees with sweep"

    def test_all_at_least_strong(self, shared_runs):
        for name, result in shared_runs.items():
            assert result.classified_level >= ConsistencyLevel.STRONG, name

    def test_complete_club_membership(self, shared_runs):
        complete = {
            name
            for name, r in shared_runs.items()
            if r.classified_level == ConsistencyLevel.COMPLETE
        }
        # the algorithms the paper says are completely consistent
        assert {"sweep", "c-strobe", "pipelined-sweep"} <= complete

    def test_every_delivered_update_accounted(self, shared_runs):
        for name, result in shared_runs.items():
            installed = result.metrics.counters.get("updates_installed", 0)
            absorbed = result.metrics.counters.get("bootstrap_absorbed", 0)
            # bootstrap absorbs some updates into the load; everything
            # else must be installed exactly once
            assert installed == result.updates_delivered, (
                name, installed, absorbed,
            )

    def test_sweep_family_message_counts_relate(self, shared_runs):
        """nested <= sweep == pipelined == global (per protocol design)."""
        q = {name: r.queries_sent for name, r in shared_runs.items()}
        assert q["pipelined-sweep"] == q["sweep"]
        assert q["global-sweep"] == q["sweep"]  # no txns in this workload
        assert q["nested-sweep"] <= q["sweep"]
        assert q["recompute"] > q["sweep"]  # n vs n-1 queries per update

    def test_eca_on_equivalent_central_workload(self):
        """ECA (centralized) also reaches the same final view."""
        workload = shared_workload(seed=13, n_sources=4, n_updates=18)
        eca = run_experiment(
            ExperimentConfig(
                algorithm="eca", seed=13, workload=workload, n_sources=4,
                latency=7.0, latency_model="uniform",
            )
        )
        sweep = run_experiment(
            ExperimentConfig(
                algorithm="sweep", seed=13, workload=workload, n_sources=4,
                latency=7.0, latency_model="uniform",
            )
        )
        assert eca.final_view == sweep.final_view
        assert eca.classified_level >= ConsistencyLevel.STRONG


class TestNonChainJoinConditions:
    """Views whose conditions skip over the chain (e.g. R1-R3)."""

    def _workload(self, seed=4):

        from repro.relational.predicate import AttrEq
        from repro.relational.schema import Schema
        from repro.relational.view import ViewDefinition
        from repro.relational.relation import Relation
        from repro.relational.delta import Delta
        from repro.sources.updater import ScheduledUpdate
        from repro.workloads.scenarios import Workload

        # R1(A,X) |><| R2(B) |><| R3(C,Y) with conditions A=B and X=Y:
        # the X=Y condition links R1 directly to R3, firing only when the
        # sweep's coverage finally spans both.
        r1 = Schema(("A", "X"), key=("A",))
        r2 = Schema(("B",), key=("B",))
        r3 = Schema(("C", "Y"), key=("C",))
        view = ViewDefinition(
            name="skip",
            relation_names=("R1", "R2", "R3"),
            schemas=(r1, r2, r3),
            join_conditions=(AttrEq("A", "B"), AttrEq("X", "Y")),
            projection=("A", "B", "C", "Y"),
        )
        initial = {
            "R1": Relation(r1, [(i, i % 3) for i in range(6)]),
            "R2": Relation(r2, [(i,) for i in range(6)]),
            "R3": Relation(r3, [(100 + i, i % 3) for i in range(6)]),
        }
        schedules = {
            1: [ScheduledUpdate(1.0, Delta.insert(r1, (10, 1))),
                ScheduledUpdate(3.0, Delta.delete(r1, (0, 0)))],
            2: [ScheduledUpdate(1.5, Delta.insert(r2, (10,)))],
            3: [ScheduledUpdate(2.0, Delta.insert(r3, (200, 1))),
                ScheduledUpdate(4.0, Delta.delete(r3, (100, 0)))],
        }
        return Workload(view=view, initial_states=initial, schedules=schedules)

    @pytest.mark.parametrize("algo", ["sweep", "nested-sweep", "c-strobe",
                                      "pipelined-sweep"])
    def test_skip_conditions_maintained(self, algo):
        from tests.warehouse.helpers import run

        result = run(algo, workload=self._workload(), latency=2.0)
        assert result.consistency[ConsistencyLevel.CONVERGENCE].ok
        assert result.classified_level >= ConsistencyLevel.STRONG

    def test_sqlite_handles_skip_conditions(self):
        from tests.warehouse.helpers import run

        mem = run("sweep", workload=self._workload(), latency=2.0)
        sql = run("sweep", workload=self._workload(), latency=2.0,
                  backend="sqlite")
        assert mem.final_view == sql.final_view
