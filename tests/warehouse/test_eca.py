"""ECA tests: centralized compensation, quiescent installs, message sizes."""

import pytest

from repro.consistency.levels import ConsistencyLevel
from repro.warehouse.errors import UnsupportedViewError

from tests.warehouse.helpers import run


class TestEca:
    @pytest.mark.parametrize("seed", range(4))
    def test_strong_consistency(self, seed):
        result = run(
            "eca", seed=seed, n_sources=3, n_updates=12,
            mean_interarrival=2.0, latency=5.0, latency_model="uniform",
            match_fraction=1.0, insert_fraction=0.5, rows_per_relation=8,
        )
        assert result.classified_level >= ConsistencyLevel.STRONG

    def test_one_query_per_update(self):
        """ECA's O(1) message cost: exactly one query+answer per update."""
        result = run("eca", seed=1, n_sources=4, n_updates=10,
                     mean_interarrival=2.0)
        assert result.queries_sent == 10
        assert result.protocol_messages == 20

    def test_quiescent_installs(self):
        """Overlapping queries collapse into fewer installs."""
        busy = run("eca", seed=1, n_sources=3, n_updates=20,
                   mean_interarrival=0.5, latency=8.0)
        assert busy.installs < busy.updates_delivered
        sparse = run("eca", seed=1, n_sources=3, n_updates=6,
                     mean_interarrival=500.0, latency=2.0)
        assert sparse.installs == sparse.updates_delivered

    def test_query_payload_grows_with_concurrency(self):
        """The quadratic-message-size critique: concurrent updates inflate
        compensating query payloads."""
        calm = run("eca", seed=2, n_sources=3, n_updates=15,
                   mean_interarrival=500.0, latency=2.0)
        busy = run("eca", seed=2, n_sources=3, n_updates=15,
                   mean_interarrival=0.5, latency=8.0)
        calm_rows = calm.query_rows_sent / calm.queries_sent
        busy_rows = busy.query_rows_sent / busy.queries_sent
        assert busy_rows > calm_rows

    def test_compensation_exactness_under_heavy_races(self):
        result = run(
            "eca", seed=5, n_sources=3, n_updates=30,
            mean_interarrival=0.4, latency=10.0, match_fraction=1.0,
            insert_fraction=0.5, rows_per_relation=6,
        )
        assert result.consistency[ConsistencyLevel.CONVERGENCE].ok
        assert result.classified_level >= ConsistencyLevel.STRONG

    def test_same_relation_updates(self):
        """Concurrent updates to the same relation skip substitution terms."""
        result = run(
            "eca", seed=7, n_sources=1, n_updates=10,
            mean_interarrival=0.5, latency=8.0,
        )
        assert result.consistency[ConsistencyLevel.CONVERGENCE].ok

    def test_requires_single_site(self, paper_view):
        from repro.simulation.kernel import Simulator
        from repro.warehouse.eca import EcaWarehouse

        with pytest.raises(UnsupportedViewError):
            EcaWarehouse(Simulator(), paper_view, query_channels={1: None, 2: None})
