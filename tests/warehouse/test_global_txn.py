"""Global (multi-source) transaction tests: Transaction-SWEEP + atomicity."""

import pytest

from repro.consistency.atomicity import (
    check_transaction_atomicity,
    collect_transactions,
)
from repro.consistency.levels import ConsistencyLevel
from repro.relational.delta import Delta
from repro.sources.updater import ScheduledUpdate
from repro.workloads.paper_example import (
    R1_SCHEMA,
    R3_SCHEMA,
    paper_example_states,
    paper_example_view,
)
from repro.workloads.scenarios import Workload

from tests.warehouse.helpers import run


def txn_workload(gap: float = 0.5):
    """A 2-part global transaction plus an interleaved local update.

    The transaction atomically deletes (2,3) from R1 and (7,8) from R3 --
    each deletion alone changes the view, so partial visibility is
    detectable.  A local R2 insert lands between the two parts.
    """
    view = paper_example_view()
    schedules = {
        1: [ScheduledUpdate(1.0, Delta.delete(R1_SCHEMA, (2, 3)),
                            txn_id="t1", txn_total=2)],
        3: [ScheduledUpdate(1.0 + gap, Delta.delete(R3_SCHEMA, (7, 8)),
                            txn_id="t1", txn_total=2)],
        2: [ScheduledUpdate(1.0 + gap / 2,
                            Delta.insert(view.schema_of(2), (3, 5)))],
    }
    return Workload(
        view=view,
        initial_states=paper_example_states(),
        schedules=schedules,
        description="global txn demo",
    )


class TestGlobalSweep:
    def test_atomic_install(self):
        result = run("global-sweep", workload=txn_workload(), latency=5.0)
        atom = check_transaction_atomicity(
            result.recorder.history, result.recorder.snapshots
        )
        assert atom.transactions_checked == 1
        assert atom.ok, atom.violations
        # no installed state contains the half-applied transaction:
        # (2,3) deleted but (7,8)[*] still present at reduced count, etc.
        assert result.consistency[ConsistencyLevel.CONVERGENCE].ok

    def test_transaction_counts_metrics(self):
        result = run("global-sweep", workload=txn_workload(), latency=5.0)
        assert result.metrics.counters["txns_installed"] == 1
        assert result.metrics.counters["txn_parts_held"] == 2

    def test_plain_updates_pass_through(self):
        """Without transactions global-sweep behaves exactly like SWEEP."""
        common = dict(seed=2, n_sources=3, n_updates=12, mean_interarrival=1.0)
        a = run("global-sweep", **common)
        b = run("sweep", **common)
        assert a.final_view == b.final_view
        assert a.classified_level == ConsistencyLevel.COMPLETE
        assert a.queries_sent == b.queries_sent

    @pytest.mark.parametrize("seed", range(5))
    def test_randomized_atomic_and_strong(self, seed):
        result = run(
            "global-sweep", seed=seed, n_sources=4, n_updates=20,
            mean_interarrival=1.0, latency=6.0, latency_model="uniform",
            global_txn_fraction=0.4, match_fraction=1.0,
            insert_fraction=0.5, rows_per_relation=8,
            max_check_vectors=100_000,
        )
        atom = check_transaction_atomicity(
            result.recorder.history, result.recorder.snapshots
        )
        assert atom.ok, atom.violations
        assert result.classified_level >= ConsistencyLevel.STRONG

    def test_plain_sweep_violates_atomicity(self):
        """The control: SWEEP installs each part separately, so the
        intermediate state exposes half the transaction."""
        result = run("sweep", workload=txn_workload(gap=5.0), latency=2.0)
        atom = check_transaction_atomicity(
            result.recorder.history, result.recorder.snapshots
        )
        assert not atom.ok
        assert any("exposes 1/2" in v for v in atom.violations)

    def test_deferred_updates_preserve_source_order(self):
        """An update from a source with a held part must wait for the txn."""
        view = paper_example_view()
        schedules = {
            1: [
                ScheduledUpdate(1.0, Delta.delete(R1_SCHEMA, (2, 3)),
                                txn_id="t1", txn_total=2),
                # same-source follow-up while the txn part is held
                ScheduledUpdate(2.0, Delta.insert(R1_SCHEMA, (9, 3))),
            ],
            3: [ScheduledUpdate(30.0, Delta.delete(R3_SCHEMA, (7, 8)),
                                txn_id="t1", txn_total=2)],
        }
        workload = Workload(view=view, initial_states=paper_example_states(),
                            schedules=schedules)
        result = run("global-sweep", workload=workload, latency=2.0)
        assert result.metrics.counters["txn_updates_deferred"] == 1
        assert result.consistency[ConsistencyLevel.CONVERGENCE].ok
        assert result.classified_level >= ConsistencyLevel.STRONG
        # txn installs first (atomically), the deferred insert after
        notes = [s.note for s in result.recorder.snapshots]
        assert "global txn" in notes[0]
        assert len(notes) == 2


class TestAtomicityChecker:
    def test_collect_transactions(self):
        result = run("global-sweep", workload=txn_workload(), latency=5.0)
        txns = collect_transactions(result.recorder.history)
        assert set(txns) == {"t1"}
        assert len(txns["t1"]) == 2

    def test_no_transactions_trivially_atomic(self):
        result = run("sweep", seed=1, n_sources=3, n_updates=5)
        atom = check_transaction_atomicity(
            result.recorder.history, result.recorder.snapshots
        )
        assert atom.ok and atom.transactions_checked == 0

    def test_missing_claim_flagged(self, paper_view):
        from repro.consistency.history import SourceHistory
        from repro.consistency.snapshots import SnapshotLog
        from repro.relational.relation import Relation
        from repro.relational.schema import Schema
        from repro.sources.messages import UpdateNotice

        history = SourceHistory()
        history.register_source(1, "R1", Relation(Schema(("A", "B"))))
        history.on_source_update(
            UpdateNotice(1, 1, Delta.insert(Schema(("A", "B")), (1, 1)),
                         txn_id="t", txn_total=1)
        )
        log = SnapshotLog()
        log.record(1.0, Relation(paper_view.view_schema))  # no claimed vector
        atom = check_transaction_atomicity(history, log)
        assert not atom.ok
        assert "claims no state vector" in atom.violations[0]
