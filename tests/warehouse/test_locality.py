"""Query-locality layer: planner, aux store, answer cache, end-to-end.

The mutation test is the load-bearing one: it corrupts the covered-copy
answer path and asserts the consistency oracle *fails* the run, proving
the oracle actually observes the locality fast path rather than being
fed the same data twice.
"""

import pytest

from repro.consistency.levels import ConsistencyLevel
from repro.harness.config import ExperimentConfig
from repro.relational.delta import Delta
from repro.relational.errors import SchemaError
from repro.relational.incremental import PartialView
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.sources.messages import QueryAnswer, QueryRequest
from repro.warehouse.locality import (
    SUPPORTED_ALGORITHMS,
    AnswerCache,
    AuxiliaryStore,
    QueryLocality,
    build_locality,
    plan_coverage,
)
from repro.workloads.paper_example import (
    paper_example_states,
    paper_example_view,
)

from tests.warehouse.helpers import paper_workload, run, trajectory


@pytest.fixture
def view():
    return paper_example_view()


@pytest.fixture
def states():
    return paper_example_states()


# ---------------------------------------------------------------------------
# Planner
# ---------------------------------------------------------------------------


class TestPlanCoverage:
    def test_off_is_all_remote(self, view, states):
        assert plan_coverage(view, states, "off", 0) == {
            1: "remote", 2: "remote", 3: "remote",
        }

    def test_cache_mode_caches_everything(self, view, states):
        assert plan_coverage(view, states, "cache", 0) == {
            1: "cache", 2: "cache", 3: "cache",
        }

    def test_aux_unlimited_covers_everything(self, view, states):
        assert plan_coverage(view, states, "aux", 0) == {
            1: "aux", 2: "aux", 3: "aux",
        }

    def test_budget_is_greedy_smallest_first(self, view, states):
        # Sizes: R1=2, R2=1, R3=2 rows.  Budget 3 fits R2 (1) then R1
        # (tie on size broken by index); R3 would exceed and stays remote.
        assert plan_coverage(view, states, "aux", 3) == {
            1: "aux", 2: "aux", 3: "remote",
        }

    def test_auto_falls_back_to_cache_not_remote(self, view, states):
        assert plan_coverage(view, states, "auto", 1) == {
            1: "cache", 2: "aux", 3: "cache",
        }

    def test_unknown_mode_raises(self, view, states):
        with pytest.raises(ValueError, match="unknown locality mode"):
            plan_coverage(view, states, "always", 0)


class TestBuildLocality:
    def test_off_returns_none(self, view, states):
        config = ExperimentConfig(algorithm="sweep", locality="off")
        assert build_locality(config, [view], states) is None

    @pytest.mark.parametrize("algorithm", ["eca", "nested-sweep", "strobe"])
    def test_unsupported_algorithm_raises(self, algorithm, view, states):
        config = ExperimentConfig(algorithm=algorithm, locality="aux")
        with pytest.raises(ValueError, match="sweep-family"):
            build_locality(config, [view], states)

    def test_supported_algorithm_builds_facade(self, view, states):
        config = ExperimentConfig(algorithm="sweep", locality="aux")
        locality = build_locality(config, [view], states)
        assert isinstance(locality, QueryLocality)
        assert all(locality.covers(i) for i in (1, 2, 3))

    def test_supported_set_names_real_algorithms(self):
        from repro.warehouse.multiview import (
            MultiViewBatchedSweepWarehouse,
            MultiViewSweepWarehouse,
        )
        from repro.warehouse.registry import ALGORITHMS

        known = set(ALGORITHMS) | {
            MultiViewSweepWarehouse.algorithm_name,
            MultiViewBatchedSweepWarehouse.algorithm_name,
        }
        assert SUPPORTED_ALGORITHMS <= known


# ---------------------------------------------------------------------------
# Auxiliary store
# ---------------------------------------------------------------------------


class TestAuxiliaryStore:
    def test_seed_copies_rather_than_aliases(self, view, states):
        store = AuxiliaryStore(view)
        store.seed(1, states["R1"])
        assert store.contents(1) is not states["R1"]
        assert store.contents(1).as_dict() == states["R1"].as_dict()

    def test_seed_schema_mismatch_raises(self, view):
        store = AuxiliaryStore(view)
        wrong = Relation(Schema(("X", "Y", "Z")), [(1, 2, 3)])
        with pytest.raises(SchemaError):
            store.seed(1, wrong)

    def test_apply_advances_the_copy(self, view, states):
        store = AuxiliaryStore(view)
        store.seed(2, states["R2"])
        delta = Delta(view.schema_of(2))
        delta.add((3, 5), +1)
        delta.add((3, 7), -1)
        store.apply(2, delta)
        assert store.contents(2).as_dict() == {(3, 5): 1}

    def test_membership_and_drop(self, view, states):
        store = AuxiliaryStore(view)
        store.seed(3, states["R3"])
        assert 3 in store and 1 not in store
        store.drop(3)
        assert 3 not in store and store.rows_total() == 0


# ---------------------------------------------------------------------------
# Answer cache
# ---------------------------------------------------------------------------


def _query(view, row=(3, 5)):
    """A sweep-step partial covering [2,2] seeded with +row at R2."""
    return PartialView.initial(view, 2, Delta.insert(view.schema_of(2), row))


def _fill(cache, view, states, request_id=1, row=(3, 5)):
    """Register a query against source 1 and route its answer."""
    query = _query(view, row)
    answer = query.extend(1, states["R1"])
    cache.register(QueryRequest(request_id=request_id, partial=query,
                                target_index=1))
    cache.on_answer_routed(QueryAnswer(request_id=request_id, partial=answer))
    return query, answer


class TestAnswerCache:
    def test_register_then_route_inserts_entry(self, view, states):
        cache = AnswerCache()
        query, answer = _fill(cache, view, states)
        assert len(cache) == 1
        hit = cache.lookup(1, query)
        assert hit is not None
        assert dict(hit.delta.items()) == dict(answer.delta.items())
        assert cache.stats["hits"] == 1

    def test_unregistered_answer_is_ignored(self, view, states):
        cache = AnswerCache()
        answer = _query(view).extend(1, states["R1"])
        cache.on_answer_routed(QueryAnswer(request_id=99, partial=answer))
        assert len(cache) == 0

    def test_lookup_returns_a_copy(self, view, states):
        cache = AnswerCache()
        query, _ = _fill(cache, view, states)
        first = cache.lookup(1, query)
        first.delta.add((9, 9, 9, 9), +1)  # mutate the returned bag
        second = cache.lookup(1, query)
        assert (9, 9, 9, 9) not in dict(second.delta.items())

    def test_miss_counts_and_returns_none(self, view, states):
        cache = AnswerCache()
        _fill(cache, view, states)
        assert cache.lookup(1, _query(view, row=(4, 6))) is None
        assert cache.stats["misses"] == 1

    def test_on_delta_patches_entry_in_place(self, view, states):
        cache = AnswerCache()
        query, answer = _fill(cache, view, states)
        change = Delta.delete(view.schema_of(1), (2, 3))
        cache.on_delta(1, change)
        expected = answer.delta.merged(query.extend(1, change).delta)
        hit = cache.lookup(1, query)
        assert dict(hit.delta.items()) == dict(expected.items())
        assert cache.stats["patches"] == 1

    def test_irrelevant_delta_does_not_patch(self, view, states):
        cache = AnswerCache()
        _fill(cache, view, states)
        miss_join = Delta.insert(view.schema_of(1), (8, 8))  # B=8 joins nothing
        cache.on_delta(1, miss_join)
        assert cache.stats["patches"] == 0

    def test_oversized_patch_invalidates(self, view, states):
        cache = AnswerCache(max_entry_rows=2)
        query, _ = _fill(cache, view, states)
        grow = Delta(view.schema_of(1))
        for b in range(4):
            grow.add((10 + b, 3), +1)  # four new B=3 rows all join (3,5)
        cache.on_delta(1, grow)
        assert len(cache) == 0
        assert cache.stats["invalidations"] == 1

    def test_budget_evicts_lru_first(self, view, states):
        cache = AnswerCache(budget_rows=2)  # each entry is 2 rows
        old_query, _ = _fill(cache, view, states, request_id=1, row=(3, 5))
        new_query, _ = _fill(cache, view, states, request_id=2, row=(3, 6))
        assert len(cache) == 1
        assert cache.stats["evictions"] == 1
        assert cache.lookup(1, new_query) is not None
        assert cache.lookup(1, old_query) is None

    def test_clear_forgets_everything(self, view, states):
        cache = AnswerCache()
        _fill(cache, view, states)
        cache.clear()
        assert len(cache) == 0 and cache.rows_total() == 0


# ---------------------------------------------------------------------------
# Facade: local answers, dedupe, recovery demotion
# ---------------------------------------------------------------------------


class TestQueryLocality:
    def test_aux_answer_matches_remote_evaluation(self, view, states):
        locality = QueryLocality(view, states, mode="aux")
        query = _query(view)
        local = locality.aux_answer(1, query)
        remote = query.extend(1, states["R1"])
        assert dict(local.delta.items()) == dict(remote.delta.items())

    def test_aux_answer_none_for_uncovered_source(self, view, states):
        locality = QueryLocality(view, states, mode="auto", budget_rows=1)
        assert locality.covers(2) and not locality.covers(1)
        assert locality.aux_answer(1, _query(view)) is None

    def test_dedupe_collapses_fingerprint_equal_partials(self, view):
        locality = QueryLocality(view, paper_example_states(), mode="aux")
        a = _query(view, row=(3, 5))
        b = _query(view, row=(3, 6))
        a_twin = _query(view, row=(3, 5))
        unique, mapping = locality.dedupe([a, b, a_twin])
        assert len(unique) == 2
        assert mapping == [0, 1, 0]

    def test_dedupe_all_distinct_is_identity(self, view):
        locality = QueryLocality(view, paper_example_states(), mode="aux")
        partials = [_query(view, row=(3, r)) for r in (5, 6, 7)]
        unique, mapping = locality.dedupe(partials)
        assert unique == partials and mapping is None

    def test_expand_gives_duplicates_fresh_deltas(self, view, states):
        locality = QueryLocality(view, states, mode="aux")
        answers = [_query(view).extend(1, states["R1"])]
        out = locality.expand(answers, [0, 0])
        assert out[0].delta is answers[0].delta
        assert out[1].delta is not answers[0].delta
        assert dict(out[1].delta.items()) == dict(out[0].delta.items())

    def test_resume_demotes_missing_copies(self, view, states):
        locality = QueryLocality(view, states, mode="auto")
        locality.resume_from({"R1": states["R1"]})
        assert locality.covers(1)
        assert locality.decisions[2] == "cache"
        assert locality.decisions[3] == "cache"
        assert locality.cache is not None and len(locality.cache) == 0

    def test_resume_demotes_to_remote_in_aux_mode(self, view, states):
        locality = QueryLocality(view, states, mode="aux")
        locality.resume_from({})
        assert locality.decisions == {1: "remote", 2: "remote", 3: "remote"}


# ---------------------------------------------------------------------------
# End-to-end equivalence and message elimination
# ---------------------------------------------------------------------------


LOCALITY_ALGS = ("sweep", "batched-sweep", "pipelined-sweep")


class TestEndToEnd:
    @pytest.mark.parametrize("algorithm", LOCALITY_ALGS)
    @pytest.mark.parametrize("mode", ["aux", "cache", "auto"])
    def test_final_view_matches_remote_protocol(self, algorithm, mode):
        base = run(algorithm, workload=paper_workload(spacing=0.5))
        res = run(algorithm, workload=paper_workload(spacing=0.5),
                  locality=mode)
        assert res.final_view.as_dict() == base.final_view.as_dict()
        assert res.consistency[ConsistencyLevel.CONVERGENCE].ok

    @pytest.mark.parametrize("algorithm", LOCALITY_ALGS)
    def test_all_covered_sweep_sends_no_queries(self, algorithm):
        res = run(algorithm, workload=paper_workload(spacing=0.5),
                  locality="aux")
        assert res.queries_sent == 0
        assert res.locality_stats["aux_hits"] > 0
        assert res.locality_stats["covered_sources"] == 3

    def test_all_covered_sweep_is_complete_and_cheaper(self):
        base = run("sweep", workload=paper_workload(spacing=0.5))
        res = run("sweep", workload=paper_workload(spacing=0.5),
                  locality="aux")
        assert res.classified_level == ConsistencyLevel.COMPLETE
        assert res.messages_total < base.messages_total
        # Only the unavoidable update notices remain on the wire.
        assert res.protocol_messages == 0

    def test_figure5_trajectory_survives_locality(self):
        from repro.workloads.paper_example import PAPER_EXPECTED_TRAJECTORY

        res = run("sweep", workload=paper_workload(spacing=1.0),
                  locality="aux")
        assert trajectory(res) == [dict(d) for d in
                                   PAPER_EXPECTED_TRAJECTORY[1:]]

    @pytest.mark.parametrize("seed", range(3))
    def test_randomized_equivalence_across_modes(self, seed):
        kwargs = dict(
            seed=seed, n_sources=4, n_updates=12, mean_interarrival=1.5,
            latency=6.0, latency_model="uniform", match_fraction=1.0,
            rows_per_relation=8, insert_fraction=0.5,
        )
        base = run("sweep", **kwargs)
        for mode in ("aux", "cache", "auto"):
            res = run("sweep", locality=mode, **kwargs)
            assert res.final_view.as_dict() == base.final_view.as_dict(), mode

    def test_partial_budget_mixes_local_and_remote(self):
        base = run("sweep", workload=paper_workload(spacing=0.5))
        res = run("sweep", workload=paper_workload(spacing=0.5),
                  locality="auto", locality_budget_rows=1)
        assert res.locality_stats["covered_sources"] == 1
        assert res.locality_stats["aux_hits"] > 0
        assert res.final_view.as_dict() == base.final_view.as_dict()

    def test_cache_mode_counts_traffic(self):
        res = run("sweep", seed=7, n_sources=3, n_updates=15,
                  mean_interarrival=1.0, latency=5.0, rows_per_relation=6,
                  match_fraction=1.0, insert_fraction=1.0, locality="cache")
        stats = res.locality_stats
        assert stats["cache_hits"] + stats["cache_misses"] > 0
        assert res.consistency[ConsistencyLevel.CONVERGENCE].ok


# ---------------------------------------------------------------------------
# Mutation test: the oracle must catch a stale/corrupted covered copy
# ---------------------------------------------------------------------------


class TestOracleCatchesCorruption:
    # Insert-only so the corrupted runs still install cleanly (no negative
    # counts) and the verdict comes from the oracle, not an install crash.
    MUTATION_KW = dict(
        seed=3, n_sources=3, n_updates=10, mean_interarrival=2.0,
        latency=5.0, rows_per_relation=6, match_fraction=1.0,
        insert_fraction=1.0,
    )

    def test_corrupted_aux_answer_fails_consistency(self, monkeypatch):
        """Inflate locally computed answer rows; the oracle must FAIL.

        If this test ever passes with the corruption in place, the
        consistency checker is not actually observing the covered path.
        """
        real = QueryLocality.aux_answer

        def corrupted(self, index, partial):
            out = real(self, index, partial)
            if out is not None:
                for row, count in list(out.delta.items()):
                    if count > 0:
                        out.delta.add(row, count)  # double it
            return out

        monkeypatch.setattr(QueryLocality, "aux_answer", corrupted)
        res = run("sweep", locality="aux", **self.MUTATION_KW)
        assert not res.consistency[ConsistencyLevel.CONVERGENCE].ok

    def test_stale_aux_copy_fails_consistency(self, monkeypatch):
        """Suppress copy maintenance (a stale aux copy) -> oracle FAILs."""
        monkeypatch.setattr(QueryLocality, "on_installed",
                            lambda self, notice: None)
        res = run("sweep", locality="aux", **self.MUTATION_KW)
        assert not res.consistency[ConsistencyLevel.CONVERGENCE].ok

    def test_same_workload_passes_without_mutation(self):
        """Control: the mutation workload is COMPLETE when unmutated."""
        res = run("sweep", locality="aux", **self.MUTATION_KW)
        assert res.classified_level == ConsistencyLevel.COMPLETE


# ---------------------------------------------------------------------------
# Locality x durability
# ---------------------------------------------------------------------------


class TestLocalityDurability:
    def test_crash_restart_with_aux_recovers_byte_equal(self):
        from repro.harness.recovery import run_crash_restart_case

        row = run_crash_restart_case("batched-sweep", 3, transport="local",
                                     locality="aux")
        assert row["error"] == ""
        assert row["ok"], row
        assert row["crash_fired"]
        assert row["views_equal"]
        assert row["locality"] == "aux"
