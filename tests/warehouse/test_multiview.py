"""Multi-view maintenance tests: shared sweeps, per-view consistency."""

import random

import pytest

from repro.consistency.levels import ConsistencyLevel
from repro.harness.multiview_runner import run_multi_view
from repro.relational.errors import SchemaError
from repro.relational.predicate import AttrCompare
from repro.warehouse.multiview import validate_same_chain
from repro.workloads.schema_gen import chain_view
from repro.workloads.scenarios import make_workload
from repro.workloads.stream import UpdateStreamConfig


def three_views(n=3):
    """Three different views over the same chain."""
    full = chain_view(n, name="full")
    keyless = chain_view(n, project_keys=False, name="payloads")
    cheap = chain_view(
        n, name="cheap", selection=AttrCompare(f"V{n}", "<", 500)
    )
    return [full, keyless, cheap]


def workload(seed=5, n=3, n_updates=15, ia=1.0):
    return make_workload(
        n,
        random.Random(seed),
        rows_per_relation=10,
        match_fraction=1.0,
        stream=UpdateStreamConfig(
            n_updates=n_updates, mean_interarrival=ia, insert_fraction=0.5,
        ),
    )


class TestValidation:
    def test_same_chain_accepted(self):
        validate_same_chain(three_views())

    def test_different_names_rejected(self):
        with pytest.raises(SchemaError):
            validate_same_chain([chain_view(3), chain_view(4)])

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            validate_same_chain([])


class TestMultiViewRuns:
    @pytest.mark.parametrize("seed", range(3))
    def test_every_view_completely_consistent(self, seed):
        result = run_multi_view(three_views(), workload(seed=seed), seed=seed)
        for name, level in result.levels.items():
            assert level == ConsistencyLevel.COMPLETE, name

    def test_message_count_independent_of_view_count(self):
        wl = workload()
        one = run_multi_view(three_views()[:1], wl, seed=1)
        three = run_multi_view(three_views(), wl, seed=1)
        assert one.queries_sent == three.queries_sent
        # queries (not answers) are counted: (n-1) per update, n=3
        assert three.queries_sent == three.updates_delivered * (3 - 1)

    def test_views_match_single_view_runs(self):
        """Each view's final contents equal a dedicated single-view run."""
        wl = workload(seed=2)
        multi = run_multi_view(three_views(), wl, seed=2)
        for view in three_views():
            solo = run_multi_view([view], wl, seed=2)
            assert multi.final_views[view.name] == solo.final_views[view.name]

    def test_selection_view_filters(self):
        result = run_multi_view(three_views(), workload(seed=3), seed=3)
        cheap = result.final_views["cheap"]
        idx = cheap.schema.index_of("V3")
        assert all(row[idx] < 500 for row in cheap.rows())

    def test_sqlite_backend(self):
        result = run_multi_view(
            three_views(), workload(seed=4), seed=4, backend="sqlite"
        )
        for level in result.levels.values():
            assert level == ConsistencyLevel.COMPLETE

    def test_under_heavy_concurrency(self):
        result = run_multi_view(
            three_views(), workload(seed=6, n_updates=20, ia=0.5),
            seed=6, latency=8.0,
        )
        assert result.metrics.counters.get("compensations", 0) > 0
        for name, level in result.levels.items():
            assert level == ConsistencyLevel.COMPLETE, name
