"""Nested SWEEP tests: strong consistency, amortization, termination guard."""

import pytest

from repro.consistency.levels import ConsistencyLevel
from repro.simulation.rng import RngRegistry
from repro.workloads.scenarios import alternating_interference_workload

from tests.warehouse.helpers import paper_workload, run, trajectory


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(5))
    def test_strong_consistency_under_concurrency(self, seed):
        result = run(
            "nested-sweep", seed=seed, n_sources=4, n_updates=15,
            mean_interarrival=1.5, latency=6.0, latency_model="uniform",
            match_fraction=1.0, rows_per_relation=8, insert_fraction=0.5,
        )
        assert result.classified_level in (
            ConsistencyLevel.STRONG, ConsistencyLevel.COMPLETE,
        )

    def test_identical_to_sweep_without_concurrency(self):
        """Section 6.2: with one update at a time, Nested SWEEP *is* SWEEP."""
        sweep = run("sweep", workload=paper_workload(spacing=1000.0))
        nested = run("nested-sweep", workload=paper_workload(spacing=1000.0))
        assert trajectory(nested) == trajectory(sweep)
        assert nested.queries_sent == sweep.queries_sent
        assert nested.classified_level == ConsistencyLevel.COMPLETE

    def test_paper_example_concurrent(self):
        """Racing updates: final state right, consistency at least strong."""
        result = run("nested-sweep", workload=paper_workload(spacing=0.5))
        assert result.final_view.as_dict() == {(5, 6): 1}
        assert result.classified_level >= ConsistencyLevel.STRONG

    def test_sqlite_backend(self):
        result = run(
            "nested-sweep", seed=2, n_sources=3, n_updates=10,
            mean_interarrival=1.0, backend="sqlite",
        )
        assert result.consistency[ConsistencyLevel.CONVERGENCE].ok


class TestAmortization:
    def test_fewer_installs_than_updates_under_bursts(self):
        result = run(
            "nested-sweep", seed=1, n_sources=4, n_updates=20,
            mean_interarrival=0.5, latency=8.0, match_fraction=1.0,
        )
        assert result.installs < result.updates_delivered
        assert result.metrics.counters["updates_installed"] == result.updates_delivered

    def test_message_amortization_vs_sweep(self):
        common = dict(seed=1, n_sources=4, n_updates=20,
                      mean_interarrival=0.5, latency=8.0, match_fraction=1.0)
        sweep = run("sweep", **common)
        nested = run("nested-sweep", **common)
        assert nested.queries_sent < sweep.queries_sent

    def test_no_amortization_when_sequential(self):
        result = run(
            "nested-sweep", seed=1, n_sources=3, n_updates=8,
            mean_interarrival=500.0, latency=2.0,
        )
        assert result.installs == result.updates_delivered


class TestTerminationGuard:
    def _adversary(self, seed=0, n_rounds=8):
        rng = RngRegistry(seed).stream("adversary")
        return alternating_interference_workload(
            3, rng, n_rounds=n_rounds, spacing=0.5,
        )

    def test_unbounded_recursion_still_terminates_on_finite_stream(self):
        result = run("nested-sweep", workload=self._adversary(),
                     latency=10.0)
        assert result.consistency[ConsistencyLevel.CONVERGENCE].ok

    def test_depth_cap_limits_recursion(self):
        capped = run("nested-sweep", workload=self._adversary(),
                     latency=10.0, nested_max_depth=1)
        assert capped.consistency[ConsistencyLevel.CONVERGENCE].ok
        # with the cap, some updates are left queued instead of absorbed
        assert capped.warehouse.max_depth_hits >= 0  # counter exists
        assert capped.installs >= 1

    def test_depth_cap_zero_behaves_like_sweep(self):
        """max_depth=0 never absorbs: one install per update, complete."""
        result = run("nested-sweep", workload=self._adversary(),
                     latency=10.0, nested_max_depth=0)
        assert result.installs == result.updates_delivered
        assert result.classified_level == ConsistencyLevel.COMPLETE

    def test_adversary_defers_installs_indefinitely(self):
        """Section 6.2's oscillation shows up as recursion absorbing every
        new interfering update: the view is not refreshed until the
        alternating sequence breaks (here: the finite stream ends), while
        the depth cap keeps installs flowing."""
        unbounded = run("nested-sweep", workload=self._adversary(),
                        latency=10.0)
        capped = run("nested-sweep", workload=self._adversary(),
                     latency=10.0, nested_max_depth=0)
        assert unbounded.installs < capped.installs
        # the single composite install lands only after the last interfering
        # update was delivered -- the stream had to break first
        last_delivery = max(n.delivered_at for n in unbounded.recorder.deliveries)
        assert unbounded.recorder.snapshots.snapshots[0].time > last_delivery
        # the flip side: absorption amortizes messages heavily
        assert unbounded.queries_sent <= capped.queries_sent
