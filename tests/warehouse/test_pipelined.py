"""Pipelined SWEEP tests (the Section 5.3 pipelining optimization)."""

import pytest

from repro.consistency.levels import ConsistencyLevel
from repro.workloads.paper_example import PAPER_EXPECTED_TRAJECTORY

from tests.warehouse.helpers import paper_workload, run, trajectory


class TestCorrectness:
    @pytest.mark.parametrize("spacing", [0.1, 1.0, 100.0])
    def test_figure5_trajectory(self, spacing):
        result = run("pipelined-sweep", workload=paper_workload(spacing=spacing))
        assert trajectory(result) == [dict(d) for d in PAPER_EXPECTED_TRAJECTORY[1:]]

    @pytest.mark.parametrize("seed", range(6))
    def test_complete_consistency_under_concurrency(self, seed):
        result = run(
            "pipelined-sweep", seed=seed, n_sources=4, n_updates=15,
            mean_interarrival=1.0, latency=6.0, latency_model="uniform",
            match_fraction=1.0, rows_per_relation=8, insert_fraction=0.5,
        )
        assert result.classified_level == ConsistencyLevel.COMPLETE
        assert result.installs == result.updates_delivered

    def test_installs_in_delivery_order(self):
        result = run(
            "pipelined-sweep", seed=2, n_sources=4, n_updates=12,
            mean_interarrival=0.5, latency=8.0,
        )
        notes = [s.note for s in result.recorder.snapshots]
        delivery_numbers = [int(n.rsplit("#", 1)[1].rstrip(")")) for n in notes]
        assert delivery_numbers == sorted(delivery_numbers)

    def test_same_message_count_as_sweep(self):
        common = dict(seed=2, n_sources=4, n_updates=12,
                      mean_interarrival=1.0, latency=6.0)
        assert (
            run("pipelined-sweep", **common).queries_sent
            == run("sweep", **common).queries_sent
        )

    def test_sqlite_backend(self):
        result = run(
            "pipelined-sweep", seed=4, n_sources=3, n_updates=10,
            mean_interarrival=1.0, backend="sqlite",
        )
        assert result.classified_level == ConsistencyLevel.COMPLETE


class TestPipelining:
    def test_rapid_installation(self):
        """The paper's promised benefit: installs land much sooner than
        sequential SWEEP's when updates arrive faster than a sweep."""
        common = dict(seed=3, n_sources=4, n_updates=20,
                      mean_interarrival=1.0, latency=8.0,
                      latency_model="constant")
        sequential = run("sweep", **common)
        pipelined = run("pipelined-sweep", **common)
        assert pipelined.mean_install_delay < sequential.mean_install_delay / 2
        assert pipelined.sim_time < sequential.sim_time

    def test_pipeline_depth_observed(self):
        result = run(
            "pipelined-sweep", seed=3, n_sources=4, n_updates=20,
            mean_interarrival=1.0, latency=8.0,
        )
        assert result.metrics.max_observation("pipeline_depth") > 1

    def test_max_parallel_one_serializes(self):
        """Depth 1 degenerates to sequential SWEEP's behaviour."""
        common = dict(seed=3, n_sources=4, n_updates=12,
                      mean_interarrival=1.0, latency=8.0,
                      latency_model="constant")
        serialized = run("pipelined-sweep", pipeline_max_parallel=1, **common)
        sweep = run("sweep", **common)
        assert serialized.classified_level == ConsistencyLevel.COMPLETE
        assert serialized.metrics.max_observation("pipeline_depth") == 1
        assert serialized.sim_time == pytest.approx(sweep.sim_time)

    def test_invalid_max_parallel(self):
        with pytest.raises(ValueError):
            run("pipelined-sweep", n_updates=0, pipeline_max_parallel=0)

    @pytest.mark.parametrize("depth", [1, 2, 8])
    def test_any_depth_is_complete(self, depth):
        result = run(
            "pipelined-sweep", seed=5, n_sources=3, n_updates=15,
            mean_interarrival=0.5, latency=6.0, pipeline_max_parallel=depth,
        )
        assert result.classified_level == ConsistencyLevel.COMPLETE
