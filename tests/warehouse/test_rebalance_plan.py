"""RebalancePlan validation and the handoff envelope round trip.

A rebalance is planned against the launch :class:`ShardPlan`; these
tests pin the invariants the migration protocol assumes (non-primary
view, active recipient, donor != recipient) and the byte-level contract
of the handoff blob that carries the sealed view between shards --
same binwire kernel and CRC discipline as a checkpoint, so a torn or
corrupt handoff fails loudly at decode time.
"""

import pytest

from repro.durability import CheckpointCorruptionError
from repro.durability.checkpoint import (
    HANDOFF_FORMAT,
    _binwire,
    decode_view_handoff,
    encode_view_handoff,
)
from repro.durability.encoding import decode_relation
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.warehouse.sharding import (
    RebalancePlan,
    partition_views,
    view_family,
)
from repro.workloads.paper_example import paper_example_view


@pytest.fixture
def family():
    return view_family(paper_example_view(), 4)


@pytest.fixture
def plan(family):
    # round-robin over 2 shards: shard 0 gets V, V#s2; shard 1 the rest.
    return partition_views(family, 2, strategy="round-robin")


# ---------------------------------------------------------------------------
# RebalancePlan validation
# ---------------------------------------------------------------------------

def test_rebalance_plan_accepts_non_primary_move(plan):
    reb = RebalancePlan(plan, "V#s2", 1)
    assert reb.from_shard == 0
    assert "V#s2" in reb.describe()


def test_rebalance_plan_rejects_unknown_view(plan):
    with pytest.raises(ValueError, match="unknown view"):
        RebalancePlan(plan, "ghost", 1)


def test_rebalance_plan_rejects_shard_primary(plan):
    # views_for(shard)[0] is the shard's identity (recorder, inbox,
    # wire labels); it must stay put.
    with pytest.raises(ValueError, match="primary"):
        RebalancePlan(plan, "V", 1)


def test_rebalance_plan_rejects_inactive_recipient(family):
    explicit = {v.name: 0 if i < 2 else 1 for i, v in enumerate(family)}
    plan = partition_views(family, 3, explicit=explicit)
    assert 2 not in plan.active_shards
    with pytest.raises(ValueError, match="not active"):
        RebalancePlan(plan, "V#s1", 2)


def test_rebalance_plan_rejects_noop_move(plan):
    with pytest.raises(ValueError, match="already lives"):
        RebalancePlan(plan, "V#s2", 0)


def test_result_plan_moves_exactly_one_view(plan):
    reb = RebalancePlan(plan, "V#s2", 1)
    after = reb.result_plan()
    assert after.shard_of("V#s2") == 1
    for view in plan.views:
        if view.name != "V#s2":
            assert after.shard_of(view.name) == plan.shard_of(view.name)
    assert [v.name for v in after.views] == [v.name for v in plan.views]


# ---------------------------------------------------------------------------
# Handoff envelope: round trip, CRC, format tag
# ---------------------------------------------------------------------------

SCHEMA = Schema(("D", "F"))


def _handoff_blob(**overrides):
    rows = Relation(SCHEMA, {(7, 8): 1, (7, 6): 2})
    kwargs = dict(
        view_name="V#s2",
        position={1: 4, 2: 2, 3: 0},
        relation=rows,
        aux={"R1": Relation(Schema(("A", "B")), {(1, 3): 1})},
        epoch=1,
    )
    kwargs.update(overrides)
    return encode_view_handoff(**kwargs)


def test_handoff_round_trip():
    decoded = decode_view_handoff(_handoff_blob())
    assert decoded["view"] == "V#s2"
    assert decoded["position"] == {1: 4, 2: 2, 3: 0}
    assert decoded["epoch"] == 1
    back = decode_relation(decoded["rows"], SCHEMA)
    assert dict(back.items()) == {(7, 8): 1, (7, 6): 2}
    aux = decode_relation(decoded["aux"]["R1"], Schema(("A", "B")))
    assert dict(aux.items()) == {(1, 3): 1}


def test_handoff_without_aux_decodes_empty_mapping():
    decoded = decode_view_handoff(_handoff_blob(aux=None))
    assert decoded["aux"] == {}


def test_handoff_detects_corrupt_body():
    binwire = _binwire()
    envelope = binwire.loads(_handoff_blob())
    envelope["body"] = envelope["body"][:-1] + bytes(
        [envelope["body"][-1] ^ 0xFF]
    )
    with pytest.raises(CheckpointCorruptionError, match="CRC"):
        decode_view_handoff(binwire.dumps(envelope))


def test_handoff_rejects_foreign_format_tag():
    binwire = _binwire()
    envelope = binwire.loads(_handoff_blob())
    envelope["format"] = HANDOFF_FORMAT + 1
    with pytest.raises(CheckpointCorruptionError, match="format"):
        decode_view_handoff(binwire.dumps(envelope))
