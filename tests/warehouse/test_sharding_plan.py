"""Unit tests for view partitioning (:mod:`repro.warehouse.sharding`).

The plan is the entire coordination surface of a sharded deployment:
every process derives it independently from the shared config, so these
tests pin the properties that make that safe -- process-independent
hashing, total assignment, fanout that covers exactly the referencing
shards, and a view family that is a pure function of its inputs.
"""

import pytest

from repro.warehouse.sharding import (
    ReplicaPlan,
    ShardMember,
    ShardPlan,
    assign_replicas,
    canonical_view_bytes,
    parse_member,
    partition_views,
    stable_shard_of,
    view_family,
)
from repro.workloads.paper_example import (
    paper_example_states,
    paper_example_view,
)


@pytest.fixture
def base_view():
    return paper_example_view()


# ---------------------------------------------------------------------------
# stable_shard_of
# ---------------------------------------------------------------------------

def test_stable_shard_of_is_deterministic_and_in_range():
    for name in ("V", "V#s1", "V#s2", "orders", ""):
        for n in (1, 2, 4, 7):
            shard = stable_shard_of(name, n)
            assert 0 <= shard < n
            assert shard == stable_shard_of(name, n)


def test_stable_shard_of_rejects_zero_shards():
    with pytest.raises(ValueError):
        stable_shard_of("V", 0)


# ---------------------------------------------------------------------------
# view_family
# ---------------------------------------------------------------------------

def test_view_family_is_deterministic(base_view):
    a = view_family(base_view, 5)
    b = view_family(paper_example_view(), 5)
    assert [v.name for v in a] == [v.name for v in b]
    assert a[0] is base_view
    for va, vb in zip(a, b):
        assert va.relation_names == vb.relation_names
        assert repr(va.selection) == repr(vb.selection)


def test_view_family_shares_the_base_chain(base_view):
    family = view_family(base_view, 4)
    assert len(family) == 4
    assert {v.name for v in family} == {"V", "V#s1", "V#s2", "V#s3"}
    for variant in family[1:]:
        assert variant.relation_names == base_view.relation_names
        assert variant.join_conditions == base_view.join_conditions
        assert variant.selection is not None


def test_view_family_variant_is_a_restriction(base_view):
    """Each variant's rows are a subset of the base view's rows."""
    states = paper_example_states()
    base_rows = dict(base_view.evaluate(states).items())
    for variant in view_family(base_view, 4)[1:]:
        for row, count in variant.evaluate(states).items():
            assert base_rows.get(row) == count


def test_view_family_rejects_zero_views(base_view):
    with pytest.raises(ValueError):
        view_family(base_view, 0)


# ---------------------------------------------------------------------------
# partition_views / ShardPlan
# ---------------------------------------------------------------------------

def test_hash_strategy_matches_stable_shard_of(base_view):
    family = view_family(base_view, 4)
    plan = partition_views(family, 3, strategy="hash")
    for view in family:
        assert plan.shard_of(view.name) == stable_shard_of(view.name, 3)


def test_round_robin_balances_in_family_order(base_view):
    family = view_family(base_view, 4)
    plan = partition_views(family, 2, strategy="round-robin")
    assert [plan.shard_of(v.name) for v in family] == [0, 1, 0, 1]
    assert [v.name for v in plan.views_for(0)] == ["V", "V#s2"]
    assert [v.name for v in plan.views_for(1)] == ["V#s1", "V#s3"]


def test_explicit_assignment_overrides_strategy(base_view):
    family = view_family(base_view, 3)
    explicit = {"V": 1, "V#s1": 1, "V#s2": 1}
    plan = partition_views(family, 2, strategy="hash", explicit=explicit)
    assert plan.active_shards == [1]
    assert plan.views_for(0) == []
    # Fanout only covers shards that actually host a referencing view.
    assert set(plan.source_fanout().values()) == {(1,)}


def test_source_fanout_covers_every_relation(base_view):
    family = view_family(base_view, 4)
    plan = partition_views(family, 2, strategy="round-robin")
    fanout = plan.source_fanout()
    assert set(fanout) == set(base_view.relation_names)
    # Every view references the whole chain, so both shards get each update.
    assert all(shards == (0, 1) for shards in fanout.values())


def test_plan_rejects_partial_assignment(base_view):
    family = view_family(base_view, 2)
    with pytest.raises(ValueError, match="without a shard"):
        ShardPlan(n_shards=2, views=tuple(family), assignment={"V": 0})


def test_plan_rejects_out_of_range_shard(base_view):
    with pytest.raises(ValueError, match="outside"):
        ShardPlan(n_shards=2, views=(base_view,), assignment={"V": 2})


def test_plan_rejects_duplicate_view_names(base_view):
    with pytest.raises(ValueError, match="duplicate"):
        ShardPlan(
            n_shards=1,
            views=(base_view, paper_example_view()),
            assignment={"V": 0},
        )


def test_partition_rejects_unknown_strategy(base_view):
    with pytest.raises(ValueError, match="unknown strategy"):
        partition_views([base_view], 2, strategy="range")
    with pytest.raises(ValueError):
        partition_views([], 2)


def test_describe_names_every_active_shard(base_view):
    family = view_family(base_view, 3)
    plan = partition_views(family, 2, strategy="round-robin")
    text = plan.describe()
    assert "shard 0" in text and "shard 1" in text
    for view in family:
        assert view.name in text


# ---------------------------------------------------------------------------
# canonical_view_bytes
# ---------------------------------------------------------------------------

def test_canonical_bytes_equal_for_equal_contents(base_view):
    states = paper_example_states()
    a = base_view.evaluate(states)
    b = base_view.evaluate(paper_example_states())
    assert canonical_view_bytes(a) == canonical_view_bytes(b)


def test_canonical_bytes_differ_when_contents_differ(base_view):
    states = paper_example_states()
    a = base_view.evaluate(states)
    variant = view_family(base_view, 2)[1]
    b = variant.evaluate(states)
    if dict(a.items()) != dict(b.items()):
        assert canonical_view_bytes(a) != canonical_view_bytes(b)


# ---------------------------------------------------------------------------
# Replica groups (ShardMember / assign_replicas / ReplicaPlan)
# ---------------------------------------------------------------------------

def test_member_labels_and_parse_round_trip():
    for shard in (0, 1, 7):
        for replica in (0, 1, 3):
            member = ShardMember(shard, replica)
            assert parse_member(member.label) == member
    assert ShardMember(3).label == "sh3"
    assert ShardMember(3, 1).label == "sh3r1"
    assert parse_member("3") == ShardMember(3)
    assert parse_member("3r2") == ShardMember(3, 2)
    with pytest.raises(ValueError):
        parse_member("banana")
    with pytest.raises(ValueError):
        ShardMember(-1)


def test_replica_less_plan_is_just_the_primaries(base_view):
    family = view_family(base_view, 4)
    plan = partition_views(family, 2, strategy="round-robin")
    rplan = assign_replicas(plan, 0)
    assert rplan.members == [ShardMember(s) for s in plan.active_shards]
    assert all(m.is_primary for m in rplan.members)
    # The primary's label matches the historic channel-name fragment, so
    # replica-less wire names are byte-identical to pre-replica builds.
    assert [m.label for m in rplan.members] == [
        f"sh{s}" for s in plan.active_shards
    ]


def test_replica_assignment_properties_random(base_view):
    """Seeded-random sweep over (n_views, n_shards, replicas, strategy).

    Properties: every group has replicas+1 members of its own shard with
    the primary first; no two members of one group share a process slot
    (anti-affinity); the member fanout lists every member of every
    fanned shard; promotion produces a valid plan led by the standby.
    """
    import random

    rng = random.Random(42)
    for _ in range(50):
        n_views = rng.randint(1, 8)
        n_shards = rng.randint(1, 4)
        replicas = rng.randint(0, 2)
        strategy = rng.choice(("hash", "round-robin"))
        family = view_family(base_view, n_views)
        plan = partition_views(family, n_shards, strategy=strategy)
        rplan = assign_replicas(plan, replicas)
        for shard in plan.active_shards:
            group = rplan.members_by_shard[shard]
            assert len(group) == replicas + 1
            assert all(m.shard == shard for m in group)
            assert group[0].is_primary
            slots = [rplan.slots[m] for m in group]
            assert len(set(slots)) == len(slots), (
                f"group {shard} shares a slot: {slots}"
            )
        shard_fanout = plan.source_fanout()
        member_fanout = rplan.member_fanout()
        assert set(member_fanout) == set(shard_fanout)
        for name, shards in shard_fanout.items():
            members = member_fanout[name]
            assert len(members) == len(shards) * (replicas + 1)
            assert {m.shard for m in members} == set(shards)
        if replicas >= 1:
            victim = rng.choice(plan.active_shards)
            promoted = rplan.promote(victim)
            new_group = promoted.members_by_shard[victim]
            assert len(new_group) == replicas
            assert new_group[0] == ShardMember(victim, 1)
            assert rplan.primary_of(victim) not in promoted.members


def test_promote_without_standby_raises(base_view):
    family = view_family(base_view, 2)
    plan = partition_views(family, 2, strategy="round-robin")
    rplan = assign_replicas(plan, 0)
    with pytest.raises(ValueError):
        rplan.promote(plan.active_shards[0])


def test_replica_plan_rejects_shared_slot(base_view):
    family = view_family(base_view, 2)
    plan = partition_views(family, 1)
    rplan = assign_replicas(plan, 1)
    shard = plan.active_shards[0]
    bad_slots = dict(rplan.slots)
    for member in rplan.members_by_shard[shard]:
        bad_slots[member] = 0
    with pytest.raises(ValueError, match="slot"):
        ReplicaPlan(
            plan=plan,
            replicas=1,
            members_by_shard=rplan.members_by_shard,
            slots=bad_slots,
        )
