"""Unit tests for view partitioning (:mod:`repro.warehouse.sharding`).

The plan is the entire coordination surface of a sharded deployment:
every process derives it independently from the shared config, so these
tests pin the properties that make that safe -- process-independent
hashing, total assignment, fanout that covers exactly the referencing
shards, and a view family that is a pure function of its inputs.
"""

import pytest

from repro.warehouse.sharding import (
    ShardPlan,
    canonical_view_bytes,
    partition_views,
    stable_shard_of,
    view_family,
)
from repro.workloads.paper_example import (
    paper_example_states,
    paper_example_view,
)


@pytest.fixture
def base_view():
    return paper_example_view()


# ---------------------------------------------------------------------------
# stable_shard_of
# ---------------------------------------------------------------------------

def test_stable_shard_of_is_deterministic_and_in_range():
    for name in ("V", "V#s1", "V#s2", "orders", ""):
        for n in (1, 2, 4, 7):
            shard = stable_shard_of(name, n)
            assert 0 <= shard < n
            assert shard == stable_shard_of(name, n)


def test_stable_shard_of_rejects_zero_shards():
    with pytest.raises(ValueError):
        stable_shard_of("V", 0)


# ---------------------------------------------------------------------------
# view_family
# ---------------------------------------------------------------------------

def test_view_family_is_deterministic(base_view):
    a = view_family(base_view, 5)
    b = view_family(paper_example_view(), 5)
    assert [v.name for v in a] == [v.name for v in b]
    assert a[0] is base_view
    for va, vb in zip(a, b):
        assert va.relation_names == vb.relation_names
        assert repr(va.selection) == repr(vb.selection)


def test_view_family_shares_the_base_chain(base_view):
    family = view_family(base_view, 4)
    assert len(family) == 4
    assert {v.name for v in family} == {"V", "V#s1", "V#s2", "V#s3"}
    for variant in family[1:]:
        assert variant.relation_names == base_view.relation_names
        assert variant.join_conditions == base_view.join_conditions
        assert variant.selection is not None


def test_view_family_variant_is_a_restriction(base_view):
    """Each variant's rows are a subset of the base view's rows."""
    states = paper_example_states()
    base_rows = dict(base_view.evaluate(states).items())
    for variant in view_family(base_view, 4)[1:]:
        for row, count in variant.evaluate(states).items():
            assert base_rows.get(row) == count


def test_view_family_rejects_zero_views(base_view):
    with pytest.raises(ValueError):
        view_family(base_view, 0)


# ---------------------------------------------------------------------------
# partition_views / ShardPlan
# ---------------------------------------------------------------------------

def test_hash_strategy_matches_stable_shard_of(base_view):
    family = view_family(base_view, 4)
    plan = partition_views(family, 3, strategy="hash")
    for view in family:
        assert plan.shard_of(view.name) == stable_shard_of(view.name, 3)


def test_round_robin_balances_in_family_order(base_view):
    family = view_family(base_view, 4)
    plan = partition_views(family, 2, strategy="round-robin")
    assert [plan.shard_of(v.name) for v in family] == [0, 1, 0, 1]
    assert [v.name for v in plan.views_for(0)] == ["V", "V#s2"]
    assert [v.name for v in plan.views_for(1)] == ["V#s1", "V#s3"]


def test_explicit_assignment_overrides_strategy(base_view):
    family = view_family(base_view, 3)
    explicit = {"V": 1, "V#s1": 1, "V#s2": 1}
    plan = partition_views(family, 2, strategy="hash", explicit=explicit)
    assert plan.active_shards == [1]
    assert plan.views_for(0) == []
    # Fanout only covers shards that actually host a referencing view.
    assert set(plan.source_fanout().values()) == {(1,)}


def test_source_fanout_covers_every_relation(base_view):
    family = view_family(base_view, 4)
    plan = partition_views(family, 2, strategy="round-robin")
    fanout = plan.source_fanout()
    assert set(fanout) == set(base_view.relation_names)
    # Every view references the whole chain, so both shards get each update.
    assert all(shards == (0, 1) for shards in fanout.values())


def test_plan_rejects_partial_assignment(base_view):
    family = view_family(base_view, 2)
    with pytest.raises(ValueError, match="without a shard"):
        ShardPlan(n_shards=2, views=tuple(family), assignment={"V": 0})


def test_plan_rejects_out_of_range_shard(base_view):
    with pytest.raises(ValueError, match="outside"):
        ShardPlan(n_shards=2, views=(base_view,), assignment={"V": 2})


def test_plan_rejects_duplicate_view_names(base_view):
    with pytest.raises(ValueError, match="duplicate"):
        ShardPlan(
            n_shards=1,
            views=(base_view, paper_example_view()),
            assignment={"V": 0},
        )


def test_partition_rejects_unknown_strategy(base_view):
    with pytest.raises(ValueError, match="unknown strategy"):
        partition_views([base_view], 2, strategy="range")
    with pytest.raises(ValueError):
        partition_views([], 2)


def test_describe_names_every_active_shard(base_view):
    family = view_family(base_view, 3)
    plan = partition_views(family, 2, strategy="round-robin")
    text = plan.describe()
    assert "shard 0" in text and "shard 1" in text
    for view in family:
        assert view.name in text


# ---------------------------------------------------------------------------
# canonical_view_bytes
# ---------------------------------------------------------------------------

def test_canonical_bytes_equal_for_equal_contents(base_view):
    states = paper_example_states()
    a = base_view.evaluate(states)
    b = base_view.evaluate(paper_example_states())
    assert canonical_view_bytes(a) == canonical_view_bytes(b)


def test_canonical_bytes_differ_when_contents_differ(base_view):
    states = paper_example_states()
    a = base_view.evaluate(states)
    variant = view_family(base_view, 2)[1]
    b = variant.evaluate(states)
    if dict(a.items()) != dict(b.items()):
        assert canonical_view_bytes(a) != canonical_view_bytes(b)
