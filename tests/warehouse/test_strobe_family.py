"""Strobe and C-Strobe tests: key assumption, quiescence, compensation."""

import pytest

from repro.consistency.levels import ConsistencyLevel
from repro.warehouse.errors import UnsupportedViewError
from repro.warehouse.keys import (
    deduplicate,
    deletion_delta_for_key,
    drop_rows_matching_key,
    key_of_row,
    require_key_preserving,
)
from repro.relational.delta import Delta
from repro.relational.relation import Relation
from repro.relational.schema import Schema

from tests.warehouse.helpers import run


class TestKeyHelpers:
    def test_key_of_row(self):
        schema = Schema(("K", "F", "V"), key=("K",))
        assert key_of_row(schema, (7, 8, 9)) == (7,)

    def test_deletion_delta_for_key(self):
        rel = Relation(Schema(("K1", "K2")), [(1, 10), (1, 20), (2, 10)])
        delta = deletion_delta_for_key(rel, (0,), (1,))
        assert delta.count((1, 10)) == -1
        assert delta.count((1, 20)) == -1
        assert (2, 10) not in delta

    def test_drop_rows_matching_key(self):
        d = Delta(Schema(("K1", "K2")), {(1, 10): 1, (2, 10): 1})
        out = drop_rows_matching_key(d, (0,), (1,))
        assert (1, 10) not in out and out.count((2, 10)) == 1

    def test_deduplicate(self):
        d = Delta(Schema(("K",)), {(1,): 3, (2,): 1, (3,): -2})
        out = deduplicate(d)
        assert out.as_dict() == {(1,): 1, (2,): 1}

    def test_require_key_preserving(self, paper_view):
        with pytest.raises(UnsupportedViewError):
            require_key_preserving(paper_view, "Strobe")


class TestKeyAssumptionEnforced:
    @pytest.mark.parametrize("algo", ["strobe", "c-strobe"])
    def test_keyless_view_rejected(self, algo):
        with pytest.raises(UnsupportedViewError):
            run(algo, n_sources=3, n_updates=0, project_keys=False)

    @pytest.mark.parametrize("algo", ["sweep", "nested-sweep"])
    def test_sweep_family_accepts_keyless_view(self, algo):
        result = run(algo, n_sources=3, n_updates=5, project_keys=False)
        assert result.consistency[ConsistencyLevel.CONVERGENCE].ok


class TestStrobe:
    @pytest.mark.parametrize("seed", range(4))
    def test_strong_consistency(self, seed):
        result = run(
            "strobe", seed=seed, n_sources=3, n_updates=12,
            mean_interarrival=2.0, latency=5.0, latency_model="uniform",
            match_fraction=1.0, insert_fraction=0.5, rows_per_relation=8,
        )
        assert result.classified_level >= ConsistencyLevel.STRONG

    def test_installs_only_at_quiescence(self):
        """Sustained updates keep UQS non-empty: install count collapses."""
        busy = run("strobe", seed=1, n_sources=3, n_updates=20,
                   mean_interarrival=0.5, latency=8.0)
        assert busy.installs < busy.updates_delivered

    def test_sparse_updates_install_individually(self):
        sparse = run("strobe", seed=1, n_sources=3, n_updates=6,
                     mean_interarrival=500.0, latency=2.0)
        assert sparse.installs == sparse.updates_delivered

    def test_deletes_cost_no_messages(self):
        result = run(
            "strobe", seed=3, n_sources=3, n_updates=10,
            insert_fraction=0.0, mean_interarrival=5.0,
        )
        assert result.queries_sent == 0
        assert result.consistency[ConsistencyLevel.CONVERGENCE].ok
        assert result.metrics.counters["strobe_local_deletes"] > 0

    def test_inserts_cost_n_minus_1_queries(self):
        result = run(
            "strobe", seed=3, n_sources=4, n_updates=8,
            insert_fraction=1.0, mean_interarrival=500.0,
        )
        assert result.queries_sent == 8 * 3

    def test_view_trails_under_load(self):
        """The paper's Strobe critique: the view trails the sources while
        updates keep coming (staleness grows with the stream)."""
        result = run("strobe", seed=2, n_sources=3, n_updates=20,
                     mean_interarrival=0.5, latency=8.0)
        first_install = result.recorder.snapshots.snapshots[0].time
        last_delivery = max(n.delivered_at for n in result.recorder.deliveries)
        assert first_install > last_delivery


class TestCStrobe:
    @pytest.mark.parametrize("seed", range(4))
    def test_complete_consistency(self, seed):
        result = run(
            "c-strobe", seed=seed, n_sources=3, n_updates=12,
            mean_interarrival=1.5, latency=5.0, latency_model="uniform",
            match_fraction=1.0, insert_fraction=0.5, rows_per_relation=8,
        )
        assert result.classified_level == ConsistencyLevel.COMPLETE
        assert result.installs == result.updates_delivered

    def test_deletes_handled_locally(self):
        result = run(
            "c-strobe", seed=3, n_sources=3, n_updates=10,
            insert_fraction=0.0, mean_interarrival=5.0,
        )
        assert result.queries_sent == 0
        assert result.classified_level == ConsistencyLevel.COMPLETE

    def test_compensating_queries_fire_under_concurrency(self):
        result = run(
            "c-strobe", seed=3, n_sources=4, n_updates=25,
            mean_interarrival=1.0, latency=8.0, match_fraction=1.0,
            insert_fraction=0.5, rows_per_relation=10,
        )
        assert result.metrics.counters.get("cstrobe_compensating_queries", 0) > 0
        assert result.classified_level == ConsistencyLevel.COMPLETE

    def test_message_cost_exceeds_sweep_under_concurrency(self):
        """The Table 1 gap: same consistency, very different message bill."""
        common = dict(seed=3, n_sources=4, n_updates=25,
                      mean_interarrival=1.0, latency=8.0, match_fraction=1.0,
                      insert_fraction=0.5, rows_per_relation=10)
        cstrobe = run("c-strobe", **common)
        sweep = run("sweep", **common)
        assert cstrobe.queries_sent > sweep.queries_sent
        assert sweep.classified_level == ConsistencyLevel.COMPLETE

    def test_sqlite_backend(self):
        result = run(
            "c-strobe", seed=5, n_sources=3, n_updates=8,
            mean_interarrival=2.0, backend="sqlite",
        )
        assert result.classified_level == ConsistencyLevel.COMPLETE
