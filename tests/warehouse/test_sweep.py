"""SWEEP tests: the paper's Section 5.2 walkthrough plus randomized runs."""

import pytest

from repro.consistency.levels import ConsistencyLevel
from repro.relational.delta import Delta
from repro.relational.incremental import PartialView
from repro.warehouse.errors import ProtocolError
from repro.warehouse.sweep import SweepOptions, merge_halves
from repro.workloads.paper_example import PAPER_EXPECTED_TRAJECTORY

from tests.warehouse.helpers import paper_workload, run, trajectory


class TestPaperExample:
    """SWEEP must reproduce Figure 5's trajectory exactly."""

    @pytest.mark.parametrize("spacing", [0.1, 1.0, 100.0])
    def test_figure5_trajectory(self, spacing):
        """Every intermediate state of Figure 5 appears, in order, whether
        the updates are concurrent (small spacing) or sequential (large)."""
        result = run("sweep", workload=paper_workload(spacing=spacing))
        states = trajectory(result)
        assert states == [dict(d) for d in PAPER_EXPECTED_TRAJECTORY[1:]]

    def test_figure5_concurrent_compensation_fires(self):
        """With spacing below the RTT the Section 5.2 compensations happen."""
        result = run("sweep", workload=paper_workload(spacing=0.5))
        assert result.metrics.counters.get("compensations", 0) >= 1
        assert result.classified_level == ConsistencyLevel.COMPLETE

    def test_figure5_message_count(self):
        """(n-1) queries + (n-1) answers per update: 3 updates x 4 = 12."""
        result = run("sweep", workload=paper_workload())
        assert result.queries_sent == 6
        assert result.protocol_messages == 12

    def test_complete_consistency_verified_independently(self):
        result = run("sweep", workload=paper_workload(spacing=0.5))
        res = result.consistency[ConsistencyLevel.COMPLETE]
        assert res.ok and res.method == "independent"


class TestRandomizedRuns:
    @pytest.mark.parametrize("seed", range(5))
    def test_complete_consistency_under_concurrency(self, seed):
        result = run(
            "sweep", seed=seed, n_sources=4, n_updates=15,
            mean_interarrival=1.5, latency=6.0, latency_model="uniform",
            match_fraction=1.0, rows_per_relation=8, insert_fraction=0.5,
        )
        assert result.classified_level == ConsistencyLevel.COMPLETE
        assert result.installs == result.updates_delivered

    @pytest.mark.parametrize("n", [1, 2, 5])
    def test_message_cost_is_linear(self, n):
        """Exactly 2(n-1) protocol messages per update, independent of load."""
        result = run(
            "sweep", n_sources=n, n_updates=10, mean_interarrival=1.0,
            latency=4.0,
        )
        assert result.protocol_messages == 10 * 2 * (n - 1)

    def test_no_quiescence_needed(self):
        """Installs happen while updates keep arriving (unlike Strobe)."""
        result = run(
            "sweep", n_sources=3, n_updates=20, mean_interarrival=3.0,
            interarrival_distribution="fixed", latency=5.0,
        )
        # updates span ~60 time units; one sweep takes ~20; installs must
        # interleave with deliveries rather than waiting for the end.
        first_install = result.recorder.snapshots.snapshots[0].time
        last_delivery = max(n.delivered_at for n in result.recorder.deliveries)
        assert first_install < last_delivery

    def test_sqlite_backend_equivalent(self):
        mem = run("sweep", seed=11, n_sources=3, n_updates=12,
                  mean_interarrival=2.0, backend="memory")
        sql = run("sweep", seed=11, n_sources=3, n_updates=12,
                  mean_interarrival=2.0, backend="sqlite")
        assert mem.final_view == sql.final_view
        assert trajectory(mem) == trajectory(sql)
        assert sql.classified_level == ConsistencyLevel.COMPLETE

    def test_view_without_keys_supported(self):
        """SWEEP has no key assumption (unlike the Strobe family)."""
        result = run(
            "sweep", n_sources=3, n_updates=10, project_keys=False,
            mean_interarrival=1.5, insert_fraction=0.5,
        )
        assert result.classified_level == ConsistencyLevel.COMPLETE

    def test_transactions_installed_atomically(self):
        result = run(
            "sweep", n_sources=3, n_updates=12, txn_fraction=0.5,
            txn_max_rows=4, mean_interarrival=2.0,
        )
        assert result.classified_level == ConsistencyLevel.COMPLETE


class TestSweepOptions:
    def test_parallel_sweep_same_results(self):
        base = run("sweep", seed=4, n_sources=5, n_updates=12,
                   mean_interarrival=1.5)
        par = run("sweep", seed=4, n_sources=5, n_updates=12,
                  mean_interarrival=1.5, sweep_parallel=True)
        assert par.final_view == base.final_view
        assert par.classified_level == ConsistencyLevel.COMPLETE
        assert par.queries_sent == base.queries_sent  # same message count

    def test_parallel_sweep_faster_install(self):
        """Halving the critical path: installs finish earlier in sim time."""
        base = run("sweep", seed=4, n_sources=5, n_updates=6,
                   mean_interarrival=200.0, latency=10.0)
        par = run("sweep", seed=4, n_sources=5, n_updates=6,
                  mean_interarrival=200.0, latency=10.0, sweep_parallel=True)
        assert par.mean_install_delay < base.mean_install_delay

    def test_parallel_on_paper_example(self):
        result = run("sweep", workload=paper_workload(spacing=0.5),
                     sweep_parallel=True)
        states = trajectory(result)
        assert states == [dict(d) for d in PAPER_EXPECTED_TRAJECTORY[1:]]

    def test_unmerged_compensation_equivalent(self):
        merged = run("sweep", seed=9, n_sources=3, n_updates=15,
                     mean_interarrival=0.8)
        unmerged = run("sweep", seed=9, n_sources=3, n_updates=15,
                       mean_interarrival=0.8, sweep_merge_queue_updates=False)
        assert merged.final_view == unmerged.final_view
        assert unmerged.classified_level == ConsistencyLevel.COMPLETE

    def test_options_dataclass(self):
        opts = SweepOptions(parallel=True)
        assert opts.parallel and opts.merge_queue_updates


class TestSelectionViews:
    """Views with a selection predicate (the sigma of the SPJ expression)."""

    def _selective_workload(self, seed=3):
        import random

        from repro.relational.predicate import AttrCompare
        from repro.workloads.data_gen import generate_initial_states
        from repro.workloads.schema_gen import chain_view
        from repro.workloads.scenarios import Workload
        from repro.workloads.stream import (
            UpdateStreamConfig,
            generate_update_schedules,
        )

        view = chain_view(3, selection=AttrCompare("V3", "<", 500))
        rng = random.Random(seed)
        states, gen = generate_initial_states(view, rng, 10, match_fraction=1.0)
        schedules = generate_update_schedules(
            view, gen, rng,
            UpdateStreamConfig(n_updates=15, mean_interarrival=1.0,
                               insert_fraction=0.5),
        )
        return Workload(view=view, initial_states=states, schedules=schedules)

    @pytest.mark.parametrize("algo", ["sweep", "nested-sweep", "c-strobe",
                                      "pipelined-sweep"])
    def test_selection_maintained_consistently(self, algo):
        result = run(algo, workload=self._selective_workload(),
                     latency=6.0, latency_model="uniform")
        assert result.consistency[ConsistencyLevel.CONVERGENCE].ok
        assert result.classified_level >= ConsistencyLevel.STRONG

    def test_selection_filters_rows(self):
        result = run("sweep", workload=self._selective_workload())
        idx = result.final_view.schema.index_of("V3")
        assert all(row[idx] < 500 for row in result.final_view.rows())


class TestMergeHalves:
    def _pieces(self, paper_view, paper_states):
        seed = Delta.insert(paper_view.schema_of(2).without_key(), (3, 5))
        seed = Delta(paper_view.schema_of(2), {(3, 5): 1})
        left = PartialView.initial(paper_view, 2, seed).extend(
            1, paper_states["R1"]
        )
        right = PartialView.initial(paper_view, 2, seed).extend(
            3, paper_states["R3"]
        )
        return seed, left, right

    def test_merge_equals_sequential(self, paper_view, paper_states):
        seed, left, right = self._pieces(paper_view, paper_states)
        sequential = (
            PartialView.initial(paper_view, 2, seed)
            .extend(1, paper_states["R1"])
            .extend(3, paper_states["R3"])
        )
        merged = merge_halves(left, right, seed)
        assert merged.delta == sequential.delta

    def test_merge_with_negative_seed(self, paper_view, paper_states):
        seed = Delta(paper_view.schema_of(2), {(3, 7): -1})
        left = PartialView.initial(paper_view, 2, seed).extend(1, paper_states["R1"])
        right = PartialView.initial(paper_view, 2, seed).extend(3, paper_states["R3"])
        sequential = left.extend(3, paper_states["R3"])
        merged = merge_halves(left, right, seed)
        assert merged.delta == sequential.delta

    def test_merge_range_validation(self, paper_view, paper_states):
        seed, left, right = self._pieces(paper_view, paper_states)
        with pytest.raises(ProtocolError):
            merge_halves(right, left, seed)
