"""Workload generation tests: schemas, data, streams, scenarios."""

import random

import pytest

from repro.relational.relation import Relation
from repro.workloads.data_gen import generate_initial_states
from repro.workloads.paper_example import (
    PAPER_EXPECTED_TRAJECTORY,
    paper_example_states,
    paper_example_updates,
    paper_example_view,
)
from repro.workloads.scenarios import (
    alternating_interference_workload,
    make_workload,
)
from repro.workloads.schema_gen import chain_view, relation_schema
from repro.workloads.stream import UpdateStreamConfig, generate_update_schedules


class TestChainView:
    def test_shape(self):
        view = chain_view(4)
        assert view.n_relations == 4
        assert view.relation_names == ("R1", "R2", "R3", "R4")
        assert view.projection == ("K1", "K2", "K3", "K4", "V4")
        assert view.projection_keeps_all_keys()
        view.validate_chain_connectivity()

    def test_keyless_projection(self):
        view = chain_view(3, project_keys=False)
        assert view.projection == ("V1", "V2", "V3")
        assert not view.projection_keeps_all_keys()

    def test_single_relation(self):
        view = chain_view(1)
        assert view.n_relations == 1

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            chain_view(0)

    def test_relation_schema_key(self):
        schema = relation_schema(2)
        assert schema.attributes == ("K2", "F2", "V2")
        assert schema.key == ("K2",)


class TestInitialData:
    def test_row_counts_and_keys_unique(self):
        view = chain_view(3)
        states, gen = generate_initial_states(view, random.Random(1), 25)
        for i in range(1, 4):
            rel = states[view.name_of(i)]
            assert rel.total_count == 25
            keys = [row[0] for row in rel.rows()]
            assert len(set(keys)) == 25
            assert gen.next_key[i] == 26

    def test_match_fraction_extremes(self):
        view = chain_view(2)
        full, _ = generate_initial_states(
            view, random.Random(1), 30, match_fraction=1.0
        )
        r2_keys = {row[0] for row in full["R2"].rows()}
        hits = sum(1 for row in full["R1"].rows() if row[1] in r2_keys)
        assert hits == 30
        none, _ = generate_initial_states(
            view, random.Random(1), 30, match_fraction=0.0
        )
        r2_keys = {row[0] for row in none["R2"].rows()}
        misses = sum(1 for row in none["R1"].rows() if row[1] not in r2_keys)
        assert misses == 30

    def test_validation(self):
        view = chain_view(2)
        with pytest.raises(ValueError):
            generate_initial_states(view, random.Random(1), -1)
        with pytest.raises(ValueError):
            generate_initial_states(view, random.Random(1), 5, match_fraction=2.0)

    def test_deterministic(self):
        view = chain_view(3)
        a, _ = generate_initial_states(view, random.Random(42), 10)
        b, _ = generate_initial_states(view, random.Random(42), 10)
        assert a == b


class TestUpdateStream:
    def _workload_pieces(self, config, seed=1, n=3):
        view = chain_view(n)
        rng = random.Random(seed)
        states, gen = generate_initial_states(view, rng, 15)
        schedules = generate_update_schedules(view, gen, rng, config)
        return view, states, schedules

    def test_replayable_deletes(self):
        """Every generated schedule must apply cleanly in time order."""
        config = UpdateStreamConfig(n_updates=60, insert_fraction=0.3,
                                    mean_interarrival=1.0)
        view, states, schedules = self._workload_pieces(config)
        for index, schedule in schedules.items():
            rel = states[view.name_of(index)]
            for update in schedule:
                rel.apply_delta(update.delta)  # raises on invalid delete

    def test_times_monotone_per_source(self):
        config = UpdateStreamConfig(n_updates=50)
        _, _, schedules = self._workload_pieces(config)
        for schedule in schedules.values():
            times = [u.time for u in schedule]
            assert times == sorted(times)

    def test_fresh_keys_never_reused(self):
        config = UpdateStreamConfig(n_updates=80, insert_fraction=0.5)
        view, states, schedules = self._workload_pieces(config)
        for index, schedule in schedules.items():
            seen = {row[0] for row in states[view.name_of(index)].rows()}
            for update in schedule:
                for row, count in update.delta.items():
                    if count > 0:
                        assert row[0] not in seen
                        seen.add(row[0])

    def test_sources_restriction(self):
        config = UpdateStreamConfig(n_updates=30, sources=(2,))
        _, _, schedules = self._workload_pieces(config)
        assert set(schedules) == {2}
        assert len(schedules[2]) <= 30

    def test_source_bounds_validated(self):
        config = UpdateStreamConfig(n_updates=5, sources=(9,))
        with pytest.raises(ValueError):
            self._workload_pieces(config)

    def test_transactions_generated(self):
        config = UpdateStreamConfig(
            n_updates=40, txn_fraction=1.0, txn_max_rows=4,
            insert_fraction=0.7,
        )
        _, _, schedules = self._workload_pieces(config)
        sizes = [
            len(u.delta)
            for schedule in schedules.values()
            for u in schedule
        ]
        assert any(s > 1 for s in sizes)

    def test_global_transactions_generated(self):
        config = UpdateStreamConfig(
            n_updates=40, global_txn_fraction=1.0, insert_fraction=0.7,
        )
        view, states, schedules = self._workload_pieces(config)
        parts = [
            u
            for schedule in schedules.values()
            for u in schedule
            if u.txn_id is not None
        ]
        assert parts, "no global transaction parts generated"
        by_txn = {}
        for part in parts:
            by_txn.setdefault(part.txn_id, []).append(part)
        for txn_parts in by_txn.values():
            assert len(txn_parts) == txn_parts[0].txn_total
            assert 2 <= len(txn_parts) <= 3
            # parts of one txn commit at the same instant
            assert len({p.time for p in txn_parts}) == 1

    def test_global_txn_parts_replayable(self):
        config = UpdateStreamConfig(
            n_updates=50, global_txn_fraction=0.5, insert_fraction=0.3,
        )
        view, states, schedules = self._workload_pieces(config)
        for index, schedule in schedules.items():
            rel = states[view.name_of(index)]
            for update in schedule:
                rel.apply_delta(update.delta)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            UpdateStreamConfig(n_updates=-1)
        with pytest.raises(ValueError):
            UpdateStreamConfig(mean_interarrival=0)
        with pytest.raises(ValueError):
            UpdateStreamConfig(distribution="weird")
        with pytest.raises(ValueError):
            UpdateStreamConfig(insert_fraction=2.0)
        with pytest.raises(ValueError):
            UpdateStreamConfig(txn_max_rows=0)

    @pytest.mark.parametrize("dist", ["exponential", "uniform", "fixed"])
    def test_distributions(self, dist):
        config = UpdateStreamConfig(n_updates=20, distribution=dist)
        _, _, schedules = self._workload_pieces(config)
        assert sum(len(s) for s in schedules.values()) <= 20


class TestScenarios:
    def test_make_workload(self):
        wl = make_workload(3, random.Random(1))
        assert wl.view.n_relations == 3
        assert wl.total_updates <= 20
        assert wl.last_commit_time() > 0
        assert "chain(3)" in wl.description

    def test_alternating_interference_shape(self):
        wl = alternating_interference_workload(3, random.Random(1), n_rounds=4)
        assert set(wl.schedules) == {1, 2}
        assert len(wl.schedules[1]) == 4
        assert len(wl.schedules[2]) == 4
        times = sorted(
            u.time for s in wl.schedules.values() for u in s
        )
        assert times == pytest.approx([1.0 + 0.5 * i for i in range(8)])

    def test_alternating_needs_two_sources(self):
        with pytest.raises(ValueError):
            alternating_interference_workload(1, random.Random(1))

    def test_empty_workload_times(self):
        wl = make_workload(
            2, random.Random(1), stream=UpdateStreamConfig(n_updates=0)
        )
        assert wl.total_updates == 0
        assert wl.last_commit_time() == 0.0


class TestPaperExample:
    def test_initial_view_state(self):
        view = paper_example_view()
        assert view.evaluate(paper_example_states()).as_dict() == dict(
            PAPER_EXPECTED_TRAJECTORY[0]
        )

    def test_updates_structure(self):
        updates = paper_example_updates(spacing=2.0, start=5.0)
        assert sorted(updates) == [1, 2, 3]
        assert updates[2][0].time == 5.0
        assert updates[3][0].time == 7.0
        assert updates[1][0].time == 9.0

    def test_trajectory_reachable_by_replay(self):
        view = paper_example_view()
        states = {k: Relation(v.schema, v.as_dict())
                  for k, v in paper_example_states().items()}
        updates = paper_example_updates()
        ordered = sorted(
            ((s[0].time, idx, s[0].delta) for idx, s in updates.items())
        )
        for step, (_, idx, delta) in enumerate(ordered, start=1):
            states[view.name_of(idx)].apply_delta(delta)
            assert view.evaluate(states).as_dict() == dict(
                PAPER_EXPECTED_TRAJECTORY[step]
            )
